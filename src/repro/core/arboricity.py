"""Section 5: edge-coloring with Delta + o(Delta) colors for graphs of
bounded arboricity.

Pipeline:

* **Lemma 5.1** — ``merge_cross_edges``: given two pre-colored sides A
  (degree <= d) and B, color the A-B cross edges with a palette of
  ``Delta + d`` in O(d) rounds. Every A-vertex labels its cross edges
  ``1..d``; in label-round i, the B-endpoints assign colors (no two active
  edges share an A-endpoint, and a shared B-endpoint assigns distinct colors
  itself). Runs as a genuine LOCAL request/reply protocol.
* **Theorem 5.2** — ``edge_color_bounded_arboricity``: H-partition ([4]),
  color intra-set edges in parallel with the Section 4 star-partition
  (vertex-disjoint across sets, so one shared O(a) palette), then merge the
  cross edges level by level from the top: ``Delta + O(a)`` colors in
  ``O(a log n)`` rounds.
* **Theorem 5.3** — ``edge_color_orientation_connector``: the Figure 3
  connector with ``sqrt(Delta)``-size in-groups and ``sqrt(a_hat)``-size
  out-groups; coloring it with Theorem 5.2 splits G into classes of degree
  ``~sqrt(Delta)`` and arboricity ``~sqrt(a_hat)``, recolored in parallel
  with Theorem 5.2: ``Delta + O(sqrt(Delta a)) + O(a)`` colors.
* **Theorem 5.4** — ``edge_color_recursive``: the bipartite orientation
  connector applied ``x - 1`` times, each level costing a factor
  ``Delta^(1/x) + a_hat^(1/x) + 3`` of colors, the final classes colored by
  Theorem 5.2.
* **Corollary 5.5** — ``edge_color_delta_plus_o_delta``: the parameter
  choice giving ``Delta (1 + o(1))`` colors in O(log n) time whenever
  ``a = O(Delta^(1 - eps))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import ColoringError, InvalidParameterError
from repro.graphs.orientation import Orientation
from repro.graphs.properties import arboricity_bounds
from repro.local import Context, Message, Node, NodeAlgorithm, RoundLedger, run_on_graph
from repro.core.connectors import OrientationConnector, build_orientation_connector
from repro.core.params import Section5Params, choose_section5_params
from repro.core.star_partition import star_partition_edge_coloring
from repro.substrates.hpartition import HPartition, h_partition
from repro.substrates.oracle import ColoringOracle
from repro.types import Edge, EdgeColoring, NodeId, edge_key, num_colors


# --------------------------------------------------------------------------
# Lemma 5.1 — cross-edge merge
# --------------------------------------------------------------------------


class CrossMergeAlgorithm(NodeAlgorithm):
    """The label-round protocol of Lemma 5.1.

    Context extras:
        side: node -> "A" | "B".
        labels: A-node -> {label (1-based) -> B-neighbor} for its cross edges.
        used: node -> iterable of palette colors already on incident edges.
        palette: palette size.
        d: the global maximum label.

    Schedule (round 0 = initialize): A sends the label-i request at round
    2i - 2, B assigns and replies at round 2i - 1, A records at round 2i.
    Total 2d rounds — O(d), matching the lemma.
    """

    name = "cross-merge"

    def initialize(self, node: Node, ctx: Context) -> None:
        node.state["used"] = set(ctx.node_input(node.id, "used", ()))
        node.state["assigned"] = {}
        node.state["output"] = node.state["assigned"]
        side = ctx.node_input(node.id, "side")
        node.state["side"] = side
        if side == "A":
            labels = ctx.node_input(node.id, "labels", {})
            node.state["labels"] = labels
            if not labels:
                node.halt()
                return
            self._send_request(node, 1)
            # Replies arrive on even rounds; between them (and on every odd
            # round) the step is a no-op, so only mail or the final halt
            # round at 2*max(labels) needs a wake-up.
            node.sleep_until(2 * max(labels))
        else:
            has_cross = any(
                ctx.extras["side"].get(u) == "A" for u in node.neighbors
            )
            if not has_cross:
                node.halt()
            else:
                # B acts only when requests arrive (odd rounds, with mail)
                # and finally halts at round 2d - 1.
                node.sleep_until(2 * ctx.extras["d"] - 1)

    def _send_request(self, node: Node, label: int) -> None:
        neighbor = node.state["labels"].get(label)
        if neighbor is not None:
            node.send(neighbor, ("req", label, tuple(node.state["used"])))

    def step(self, node: Node, inbox: List[Message], round_no: int, ctx: Context) -> None:
        d = ctx.extras["d"]
        if node.state["side"] == "A":
            if round_no % 2 == 1:
                return  # replies arrive on even rounds only
            # Even rounds: record the label-(round/2) reply, send next request.
            for msg in inbox:
                kind, label, color = msg.payload
                if kind != "rep":
                    raise ColoringError(f"A-node got unexpected {kind!r}")
                edge = edge_key(node.id, msg.sender)
                node.state["assigned"][edge] = color
                node.state["used"].add(color)
            next_label = round_no // 2 + 1
            if next_label <= d:
                self._send_request(node, next_label)
            if round_no >= 2 * max(node.state["labels"]):
                node.halt()
        else:
            if round_no % 2 == 0:
                return  # requests arrive on odd rounds only
            palette = ctx.extras["palette"]
            for msg in sorted(inbox, key=lambda m: repr(m.sender)):
                kind, label, their_used = msg.payload
                if kind != "req":
                    raise ColoringError(f"B-node got unexpected {kind!r}")
                blocked = node.state["used"] | set(their_used)
                color = next((c for c in range(palette) if c not in blocked), None)
                if color is None:
                    raise ColoringError(
                        f"merge palette {palette} exhausted at {node.id!r} "
                        f"(|blocked|={len(blocked)})"
                    )
                node.state["used"].add(color)
                edge = edge_key(node.id, msg.sender)
                node.state["assigned"][edge] = color
                node.send(msg.sender, ("rep", label, color))
            if round_no >= 2 * d - 1:
                node.halt()


def merge_cross_edges(
    graph: nx.Graph,
    side: Dict[NodeId, str],
    coloring: EdgeColoring,
    palette: int,
    ledger: Optional[RoundLedger] = None,
    label: str = "cross-merge",
) -> EdgeColoring:
    """Color the A-B cross edges of ``graph`` on top of the existing partial
    ``coloring`` (which must cover every non-cross edge of ``graph``),
    using colors below ``palette``. Returns the extended coloring."""
    cross: List[Edge] = []
    for u, v in graph.edges():
        e = edge_key(u, v)
        if side[u] != side[v]:
            if e in coloring:
                raise InvalidParameterError(f"cross edge {e!r} already colored")
            cross.append(e)
        elif e not in coloring:
            raise InvalidParameterError(f"non-cross edge {e!r} is uncolored")
    if not cross:
        return dict(coloring)

    labels: Dict[NodeId, Dict[int, NodeId]] = {}
    for u, v in cross:
        a, b = (u, v) if side[u] == "A" else (v, u)
        labels.setdefault(a, {})
    for a in labels:
        partners = sorted(
            (v for v in graph.neighbors(a) if side[v] != side[a]), key=repr
        )
        labels[a] = {i: p for i, p in enumerate(partners, start=1)}
    d = max(len(m) for m in labels.values())

    used: Dict[NodeId, List[int]] = {}
    for (u, v), c in coloring.items():
        if graph.has_edge(u, v):
            used.setdefault(u, []).append(c)
            used.setdefault(v, []).append(c)

    result = run_on_graph(
        graph,
        CrossMergeAlgorithm(),
        extras={
            "side": side,
            "labels": labels,
            "used": used,
            "palette": palette,
            "d": d,
        },
    )
    merged = dict(coloring)
    for v, assigned in result.outputs.items():
        for e, c in assigned.items():
            previous = merged.get(e)
            if previous is not None and previous != c:
                raise ColoringError(f"conflicting merge assignment on {e!r}")
            merged[e] = c
    missing = [e for e in cross if e not in merged]
    if missing:
        raise ColoringError(f"merge left {len(missing)} cross edges uncolored")
    if ledger is not None:
        ledger.add(label, actual=result.rounds, modeled=2 * d)
    return merged


# --------------------------------------------------------------------------
# Results container
# --------------------------------------------------------------------------


@dataclass
class ArboricityColoringResult:
    """Outcome of a Section 5 edge coloring."""

    coloring: EdgeColoring
    colors_used: int
    palette_bound: int
    delta: int
    arboricity: int
    dhat: int
    ledger: RoundLedger = field(repr=False)
    params: Optional[Section5Params] = None

    @property
    def rounds_actual(self) -> float:
        return self.ledger.total_actual

    @property
    def rounds_modeled(self) -> float:
        return self.ledger.total_modeled

    @property
    def overhead_over_delta(self) -> float:
        """(colors - Delta) / Delta — the o(Delta) term, empirically."""
        if self.delta == 0:
            return 0.0
        return (self.colors_used - self.delta) / self.delta


def _resolve_arboricity(graph: nx.Graph, arboricity: Optional[int]) -> int:
    if arboricity is not None:
        if arboricity < 1:
            raise InvalidParameterError("arboricity bound must be >= 1")
        return arboricity
    return max(1, arboricity_bounds(graph).upper)


def _edge_subgraph(edges: List[Edge]) -> nx.Graph:
    sub = nx.Graph()
    sub.add_edges_from(edges)
    return sub


# --------------------------------------------------------------------------
# Theorem 5.2
# --------------------------------------------------------------------------


def edge_color_bounded_arboricity(
    graph: nx.Graph,
    arboricity: Optional[int] = None,
    q: float = 3.0,
    oracle: Optional[ColoringOracle] = None,
    ledger: Optional[RoundLedger] = None,
    partition: Optional[HPartition] = None,
    internal_x: int = 1,
) -> ArboricityColoringResult:
    """Theorem 5.2: a ``(Delta + O(a))``-edge-coloring in O(a log n) rounds.

    ``partition`` may carry a precomputed H-partition (used by Theorems
    5.3/5.4 to reuse the top-level partition's orientation information).
    ``internal_x`` is the star-partition recursion depth for the intra-set
    edges — the paper notes this step "can be computed much faster in the
    expense of increasing the constant" (Theorem 4.1); deeper recursion
    trades intra-set colors for rounds.
    """
    oracle = oracle or ColoringOracle()
    own = RoundLedger(label="thm-5.2")
    a = _resolve_arboricity(graph, arboricity)
    delta = max((d for _, d in graph.degree()), default=0)
    if graph.number_of_edges() == 0:
        return ArboricityColoringResult(
            coloring={}, colors_used=0, palette_bound=0, delta=delta,
            arboricity=a, dhat=0, ledger=own,
        )
    hp = partition or h_partition(graph, arboricity=a, q=q, ledger=own)
    dhat = hp.threshold

    # Intra-set edges are vertex-disjoint across sets: one shared palette.
    internal = [
        edge_key(u, v) for u, v in graph.edges() if hp.index[u] == hp.index[v]
    ]
    coloring: EdgeColoring = {}
    internal_colors = 0
    if internal:
        internal_graph = _edge_subgraph(internal)
        internal_result = star_partition_edge_coloring(
            internal_graph, x=internal_x, oracle=oracle, ledger=own
        )
        coloring = dict(internal_result.coloring)
        internal_colors = internal_result.colors_used

    palette = max(delta + dhat, internal_colors)
    levels = hp.num_levels
    for i in range(levels - 1, 0, -1):
        members = [v for v in graph.nodes() if hp.index[v] >= i]
        stage_graph = graph.subgraph(members)
        if stage_graph.number_of_edges() == 0:
            continue
        side = {
            v: "A" if hp.index[v] == i else "B" for v in stage_graph.nodes()
        }
        if not any(s == "A" for s in side.values()):
            continue
        stage_coloring = {
            e: c
            for e, c in coloring.items()
            if stage_graph.has_edge(*e)
        }
        merged = merge_cross_edges(
            stage_graph, side, stage_coloring, palette, ledger=own,
            label=f"merge-stage-{i}",
        )
        coloring.update(merged)

    if ledger is not None:
        ledger.add("thm-5.2", actual=own.total_actual, modeled=own.total_modeled)
    return ArboricityColoringResult(
        coloring=coloring,
        colors_used=num_colors(coloring),
        palette_bound=palette,
        delta=delta,
        arboricity=a,
        dhat=dhat,
        ledger=own,
    )


# --------------------------------------------------------------------------
# Theorem 5.3
# --------------------------------------------------------------------------


def edge_color_orientation_connector(
    graph: nx.Graph,
    arboricity: Optional[int] = None,
    q: float = 3.0,
    oracle: Optional[ColoringOracle] = None,
    ledger: Optional[RoundLedger] = None,
) -> ArboricityColoringResult:
    """Theorem 5.3: ``Delta + O(sqrt(Delta * a)) + O(a)`` colors in
    ``O(sqrt(a) log n)`` rounds via the Figure 3 orientation connector."""
    oracle = oracle or ColoringOracle()
    own = RoundLedger(label="thm-5.3")
    a = _resolve_arboricity(graph, arboricity)
    delta = max((d for _, d in graph.degree()), default=0)
    if graph.number_of_edges() == 0:
        return ArboricityColoringResult(
            coloring={}, colors_used=0, palette_bound=0, delta=delta,
            arboricity=a, dhat=0, ledger=own,
        )
    hp = h_partition(graph, arboricity=a, q=q, ledger=own)
    dhat = hp.threshold
    orientation = hp.orientation()

    k_in = max(1, math.isqrt(delta))
    g_in = max(1, math.ceil(delta / k_in))
    g_out = max(1, math.isqrt(dhat) + (0 if math.isqrt(dhat) ** 2 == dhat else 1))
    connector = build_orientation_connector(
        graph, orientation, in_group_size=g_in, out_group_size=g_out
    )
    phi = edge_color_bounded_arboricity(
        connector.graph, arboricity=g_out, q=q, oracle=oracle, ledger=own
    )
    classes = connector.classes(phi.coloring)

    class_arboricity = max(1, math.ceil(dhat / g_out))
    combined: Dict[Edge, Tuple[int, int]] = {}
    widths: Dict[int, int] = {}
    with own.parallel("thm-5.3-classes") as scope:
        for c, edges in sorted(classes.items()):
            branch = scope.branch(f"class-{c}")
            sub = _edge_subgraph(edges)
            psi = edge_color_bounded_arboricity(
                sub, arboricity=class_arboricity, q=q, oracle=oracle, ledger=branch
            )
            widths[c] = max(psi.coloring.values(), default=0) + 1
            for e in edges:
                combined[e] = (c, psi.coloring[e])
    # Flatten the product coloring densely.
    palette = sorted(set(combined.values()))
    index = {p: i for i, p in enumerate(palette)}
    coloring = {e: index[p] for e, p in combined.items()}

    bound = phi.palette_bound * max(widths.values(), default=1)
    if ledger is not None:
        ledger.add("thm-5.3", actual=own.total_actual, modeled=own.total_modeled)
    return ArboricityColoringResult(
        coloring=coloring,
        colors_used=num_colors(coloring),
        palette_bound=bound,
        delta=delta,
        arboricity=a,
        dhat=dhat,
        ledger=own,
    )


# --------------------------------------------------------------------------
# Theorem 5.4
# --------------------------------------------------------------------------


def _bipartite_connector_coloring(
    connector: OrientationConnector,
    g_in: int,
    g_out: int,
    ledger: RoundLedger,
) -> EdgeColoring:
    """Edge-color the bipartite connector with ``g_in + g_out - 1`` colors in
    O(g_out) rounds via the Lemma 5.1 protocol with empty pre-colorings
    (A = out-virtuals, the low-degree side)."""
    side = {v: ("A" if s == "out" else "B") for v, s in (connector.side or {}).items()}
    return merge_cross_edges(
        connector.graph,
        side,
        coloring={},
        palette=g_in + g_out - 1,
        ledger=ledger,
        label="bipartite-connector",
    )


def edge_color_recursive(
    graph: nx.Graph,
    x: int,
    arboricity: Optional[int] = None,
    q: float = 3.0,
    oracle: Optional[ColoringOracle] = None,
    ledger: Optional[RoundLedger] = None,
) -> ArboricityColoringResult:
    """Theorem 5.4: a ``(Delta^(1/x) + a_hat^(1/x) + 3)^x``-edge-coloring in
    ``O(a_hat^(1/x) (x + log n / log q))`` rounds: ``x - 1`` bipartite
    connector levels, then Theorem 5.2 on the residual classes."""
    if x < 1:
        raise InvalidParameterError("x must be >= 1")
    oracle = oracle or ColoringOracle()
    own = RoundLedger(label="thm-5.4")
    a = _resolve_arboricity(graph, arboricity)
    delta = max((d for _, d in graph.degree()), default=0)
    if graph.number_of_edges() == 0:
        return ArboricityColoringResult(
            coloring={}, colors_used=0, palette_bound=0, delta=delta,
            arboricity=a, dhat=0, ledger=own, params=Section5Params(x=x, q=q),
        )
    hp = h_partition(graph, arboricity=a, q=q, ledger=own)
    orientation = hp.orientation()
    dhat = hp.threshold

    def recurse(
        sub: nx.Graph,
        sub_orientation: Orientation,
        beta: int,
        levels: int,
        sub_ledger: RoundLedger,
    ) -> Dict[Edge, Tuple[int, ...]]:
        if sub.number_of_edges() == 0:
            return {}
        sub_delta = max(d for _, d in sub.degree())
        if levels == 0 or sub_delta <= 3:
            result = edge_color_bounded_arboricity(
                sub, arboricity=max(1, beta), q=q, oracle=oracle, ledger=sub_ledger
            )
            return {e: (c,) for e, c in result.coloring.items()}
        exponent = 1.0 / (levels + 1)
        g_in = max(2, math.ceil(sub_delta**exponent) + 1)
        g_out = max(1, math.ceil(max(beta, 1) ** exponent) + 1)
        connector = build_orientation_connector(
            sub, sub_orientation, in_group_size=g_in, out_group_size=g_out,
            bipartite=True,
        )
        phi = _bipartite_connector_coloring(connector, g_in, g_out, sub_ledger)
        classes = connector.classes(phi)
        combined: Dict[Edge, Tuple[int, ...]] = {}
        new_beta = max(1, math.ceil(max(beta, 1) / g_out))
        with sub_ledger.parallel(f"thm-5.4-classes(l={levels})") as scope:
            for c, edges in sorted(classes.items()):
                branch = scope.branch(f"class-{c}")
                class_graph = _edge_subgraph(edges)
                class_orientation = sub_orientation.restrict(class_graph)
                psi = recurse(class_graph, class_orientation, new_beta, levels - 1, branch)
                for e in edges:
                    combined[e] = (c,) + psi[e]
        return combined

    tuples = recurse(graph, orientation, dhat, x - 1, own)
    palette = sorted(set(tuples.values()))
    index = {p: i for i, p in enumerate(palette)}
    coloring = {e: index[p] for e, p in tuples.items()}

    factor = math.ceil(delta ** (1.0 / x)) + math.ceil(dhat ** (1.0 / x)) + 3
    if ledger is not None:
        ledger.add("thm-5.4", actual=own.total_actual, modeled=own.total_modeled)
    return ArboricityColoringResult(
        coloring=coloring,
        colors_used=num_colors(coloring),
        palette_bound=factor**x,
        delta=delta,
        arboricity=a,
        dhat=dhat,
        ledger=own,
        params=Section5Params(x=x, q=q),
    )


# --------------------------------------------------------------------------
# Corollary 5.5
# --------------------------------------------------------------------------


def edge_color_delta_plus_o_delta(
    graph: nx.Graph,
    arboricity: Optional[int] = None,
    oracle: Optional[ColoringOracle] = None,
    ledger: Optional[RoundLedger] = None,
) -> ArboricityColoringResult:
    """Corollary 5.5: auto-parameterized ``Delta (1 + o(1))``-edge-coloring
    for ``a = o(Delta)`` (falls back to Theorem 5.2 when the recursion depth
    formula selects x = 1)."""
    a = _resolve_arboricity(graph, arboricity)
    delta = max((d for _, d in graph.degree()), default=0)
    params = choose_section5_params(max(delta, 1), a)
    if params.x == 1:
        result = edge_color_bounded_arboricity(
            graph, arboricity=a, q=params.q, oracle=oracle, ledger=ledger
        )
    else:
        result = edge_color_recursive(
            graph, x=params.x, arboricity=a, q=params.q, oracle=oracle, ledger=ledger
        )
    result.params = params
    return result


# ---------------------------------------------------------------- registry

from repro import registry as _registry


def _arboricity_run(name: str, result: ArboricityColoringResult) -> _registry.AlgorithmRun:
    return _registry.AlgorithmRun(
        name=name,
        kind="edge-coloring",
        coloring=result.coloring,
        colors_used=result.colors_used,
        rounds_actual=result.rounds_actual,
        rounds_modeled=result.rounds_modeled,
        extra={
            "palette_bound": result.palette_bound,
            "delta": result.delta,
            "arboricity": result.arboricity,
            "dhat": result.dhat,
        },
    )


def _run_thm52(
    graph: nx.Graph, arboricity: Optional[int] = None, q: float = 3.0
) -> _registry.AlgorithmRun:
    return _arboricity_run(
        "thm52", edge_color_bounded_arboricity(graph, arboricity=arboricity, q=q)
    )


def _run_thm53(
    graph: nx.Graph, arboricity: Optional[int] = None, q: float = 3.0
) -> _registry.AlgorithmRun:
    return _arboricity_run(
        "thm53", edge_color_orientation_connector(graph, arboricity=arboricity, q=q)
    )


def _run_thm54(
    graph: nx.Graph, x: int = 2, arboricity: Optional[int] = None, q: float = 3.0
) -> _registry.AlgorithmRun:
    return _arboricity_run(
        "thm54", edge_color_recursive(graph, x=x, arboricity=arboricity, q=q)
    )


def _run_cor55(
    graph: nx.Graph, arboricity: Optional[int] = None
) -> _registry.AlgorithmRun:
    return _arboricity_run(
        "cor55", edge_color_delta_plus_o_delta(graph, arboricity=arboricity)
    )


_registry.register(
    _registry.AlgorithmSpec(
        name="thm52",
        family="core",
        kind="edge-coloring",
        summary="Theorem 5.2: H-partition + star partition + level-by-level cross merge",
        color_bound="Delta + O(a)",
        rounds_bound="O(a * log n)",
        runner=_run_thm52,
        invariants=("proper-edge-coloring", "palette-bound"),
        requires=("bounded-arboricity",),
        compact_ok=True,  # subgraph/has_edge + the CSR core-number branch
        params=("arboricity", "q"),
    )
)
_registry.register(
    _registry.AlgorithmSpec(
        name="thm53",
        family="core",
        kind="edge-coloring",
        summary="Theorem 5.3: Figure 3 orientation connector, recolored with Theorem 5.2",
        color_bound="Delta + O(sqrt(Delta*a)) + O(a)",
        rounds_bound="O(sqrt(a) * log n)",
        runner=_run_thm53,
        invariants=("proper-edge-coloring", "palette-bound"),
        requires=("bounded-arboricity",),
        compact_ok=True,  # subgraph/has_edge + the CSR core-number branch
        params=("arboricity", "q"),
    )
)
_registry.register(
    _registry.AlgorithmSpec(
        name="thm54",
        family="core",
        kind="edge-coloring",
        summary="Theorem 5.4: x-1 bipartite connector levels over Theorem 5.2",
        color_bound="(Delta^(1/x) + a_hat^(1/x) + 3)^x",
        rounds_bound="O(a_hat^(1/x) * (x + log n / log q))",
        runner=_run_thm54,
        invariants=("proper-edge-coloring", "palette-bound"),
        requires=("bounded-arboricity",),
        compact_ok=True,  # subgraph/has_edge + the CSR core-number branch
        params=("x", "arboricity", "q"),
    )
)
_registry.register(
    _registry.AlgorithmSpec(
        name="cor55",
        family="core",
        kind="edge-coloring",
        summary="Corollary 5.5: auto-parameterized Delta(1+o(1))-edge-coloring",
        color_bound="Delta * (1 + o(1)) for a = o(Delta)",
        rounds_bound="O(log n) for a = O(Delta^(1-eps))",
        runner=_run_cor55,
        invariants=("proper-edge-coloring", "palette-bound"),
        requires=("bounded-arboricity",),
        compact_ok=True,  # subgraph/has_edge + the CSR core-number branch
        params=("arboricity",),
    )
)
