"""Protocol-level tests for the Lemma 5.1 cross-merge algorithm."""

import networkx as nx
import pytest

from repro.analysis import verify_edge_coloring
from repro.core import merge_cross_edges
from repro.core.arboricity import CrossMergeAlgorithm
from repro.local import RoundLedger, run_on_graph
from repro.types import edge_key


def star_instance(leaves=5):
    """One B-center with `leaves` A-leaves — worst case for B assignment."""
    g = nx.star_graph(leaves)
    side = {0: "B", **{i: "A" for i in range(1, leaves + 1)}}
    return g, side


class TestSchedule:
    def test_all_labels_are_one_for_disjoint_edges(self):
        # A-vertices with a single cross edge each: every edge has label 1,
        # so the whole merge completes in the first request/reply exchange.
        g = nx.Graph([(0, 10), (1, 11), (2, 12)])
        side = {0: "A", 1: "A", 2: "A", 10: "B", 11: "B", 12: "B"}
        ledger = RoundLedger()
        merged = merge_cross_edges(g, side, {}, palette=4, ledger=ledger)
        verify_edge_coloring(g, merged)
        assert ledger.total_actual <= 3  # d = 1 -> 2 rounds + slack

    def test_star_center_assigns_distinct_colors_in_one_round(self):
        g, side = star_instance(leaves=6)
        merged = merge_cross_edges(g, side, {}, palette=6)
        # all 6 edges share the B-center: colors must be pairwise distinct
        assert len(set(merged.values())) == 6

    def test_a_center_spreads_over_labels(self):
        # an A-center with many cross edges labels them 1..d: the protocol
        # takes ~2d rounds but still needs only a small palette because the
        # conflicts are at the shared A-endpoint.
        g = nx.star_graph(5)
        side = {0: "A", **{i: "B" for i in range(1, 6)}}
        ledger = RoundLedger()
        merged = merge_cross_edges(g, side, {}, palette=5, ledger=ledger)
        verify_edge_coloring(g, merged)
        assert len(set(merged.values())) == 5
        assert 2 * 5 - 1 <= ledger.total_actual <= 2 * 5 + 1

    def test_outputs_consistent_between_sides(self):
        g, side = star_instance(leaves=4)
        result = run_on_graph(
            g,
            CrossMergeAlgorithm(),
            extras={
                "side": side,
                "labels": {
                    i: {1: 0} for i in range(1, 5)
                },
                "used": {},
                "palette": 8,
                "d": 1,
            },
        )
        b_view = result.output_of(0)
        for leaf in range(1, 5):
            a_view = result.output_of(leaf)
            e = edge_key(0, leaf)
            assert a_view[e] == b_view[e]


class TestUsedColorPropagation:
    def test_a_side_colors_block_reuse(self):
        # A-vertex 1 already has an incident edge colored 0: its cross edge
        # must avoid 0 even though B does not see that edge.
        g = nx.Graph([(1, 2), (1, 10)])
        side = {1: "A", 2: "A", 10: "B"}
        base = {edge_key(1, 2): 0}
        merged = merge_cross_edges(g, side, base, palette=4)
        assert merged[edge_key(1, 10)] != 0

    def test_b_side_colors_block_reuse(self):
        g = nx.Graph([(10, 11), (1, 10)])
        side = {1: "A", 10: "B", 11: "B"}
        base = {edge_key(10, 11): 2}
        merged = merge_cross_edges(g, side, base, palette=4)
        assert merged[edge_key(1, 10)] != 2

    def test_sequential_labels_see_earlier_assignments(self):
        # A-center with two cross edges to the same region: the label-2
        # request must carry the label-1 color, so the two edges differ even
        # though their B-endpoints are different vertices.
        g = nx.Graph([(0, 10), (0, 11)])
        side = {0: "A", 10: "B", 11: "B"}
        merged = merge_cross_edges(g, side, {}, palette=4)
        assert merged[edge_key(0, 10)] != merged[edge_key(0, 11)]


class TestStress:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_bipartite_instances(self, seed):
        from repro.graphs import random_bipartite_regular

        g = random_bipartite_regular(12, 5, seed=seed)
        left, right = nx.bipartite.sets(g)
        side = {v: "A" for v in left}
        side.update({v: "B" for v in right})
        d_a = max((g.degree(v) for v in left), default=1)
        d_b = max((g.degree(v) for v in right), default=1)
        merged = merge_cross_edges(g, side, {}, palette=d_a + d_b - 1)
        verify_edge_coloring(g, merged, palette=d_a + d_b - 1)
