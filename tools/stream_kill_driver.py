#!/usr/bin/env python3
"""Kill/resume campaign driver shared by ``tools/ci.sh`` (streaming
smoke) and ``benchmarks/bench_stream.py`` (kill-loss gate).

Runs one ``--jobs`` cached campaign whose deliberately slow HEAD cell
blocks while the flag file exists, ahead of ``fast_cells`` fast cells.
The head cell pins one worker, so every fast cell completes *out of
order* — the streaming executor must have persisted each one by the time
the harness SIGKILLs this process. With the flag removed, the head cell
computes instantly, so resumed and uninterrupted runs produce identical
rows (the blocker delegates to greedy).

Usage: stream_kill_driver.py DB FLAG JOBS FAST_CELLS

Requires the ``fork`` start method (the Linux default): pool workers must
inherit the blocker registered below — under ``spawn`` they would
re-import :mod:`repro` and not find it.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from typing import Sequence

from repro import registry
from repro.analysis.campaign import CampaignCell, CampaignRunner
from repro.store import ExperimentStore, RunCache


def main(argv: Sequence[str]) -> int:
    db, flag, jobs, fast_cells = argv[0], argv[1], int(argv[2]), int(argv[3])

    def _blocking_greedy(graph):
        # Block only while the kill-phase flag exists: resumed and
        # uninterrupted runs compute the identical row instantly.
        while os.path.exists(flag):
            time.sleep(0.05)
        run = registry.get("greedy").runner(graph)
        return dataclasses.replace(run, name="stream-blocker")

    registry.register(
        registry.AlgorithmSpec(
            name="stream-blocker", family="baseline", kind="edge-coloring",
            summary="greedy, gated on a flag file (kill/resume harness)",
            color_bound="2D-1", rounds_bound="-", runner=_blocking_greedy,
        )
    )

    cells = [
        CampaignCell("stream-blocker", "random-regular", {"n": 16, "d": 4}, seed=0)
    ] + [
        CampaignCell("greedy", "random-regular", {"n": 16, "d": 4}, seed=s)
        for s in range(1, 1 + fast_cells)
    ]
    with ExperimentStore(db) as store:
        CampaignRunner(cells, jobs=jobs, cache=RunCache(store)).run()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
