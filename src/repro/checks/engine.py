"""Discovery, parsing and dispatch for ``repro check``.

One pass over the tree: every ``*.py`` under ``<root>/src/repro`` is
read and parsed exactly once into a :class:`SourceFile` (text, line
table, AST, waivers); per-file checkers run against each file they
select, project checkers run once against the whole :class:`Project`.
Waivers are applied centrally — checkers only *find*, they never decide
suppression — and malformed waiver comments surface through the
``waiver-syntax`` rule so a typo cannot silently disable enforcement.

The scan is purely syntactic: nothing under analysis is imported, so the
pass is safe on trees that would crash at import time (that is the point
of running it before pytest in CI) and on planted-violation copies.
"""

from __future__ import annotations

import ast
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.checks.base import (
    CheckRule,
    FileChecker,
    ProjectChecker,
    Violation,
    checkers as _checkers,
)
from repro.checks.waivers import WaiverSet, parse_waivers
from repro.errors import CheckError

#: Version stamp of the ``--json`` report shape. Bump when it changes;
#: the report is consumed by CI greps and the fixture tests.
REPORT_VERSION = 1

#: The ``waiver-syntax`` rule is owned by the engine (waiver parsing is
#: engine infrastructure, not a rules module) but registered like any
#: other rule so ``--list``/``--rule`` treat it uniformly.
WAIVER_SYNTAX_RULE = CheckRule(
    name="waiver-syntax",
    family="meta",
    summary="waiver comments must parse and carry a rationale: "
    "'# repro-check: ok <rule> — rationale' (or 'file ok'); the named "
    "rule must exist",
)


@dataclass
class SourceFile:
    """One parsed source file plus its waivers."""

    path: Path  #: absolute
    rel: str  #: root-relative POSIX path (``src/repro/kernels/greedy.py``)
    pkg_rel: str  #: package-relative POSIX path (``kernels/greedy.py``)
    text: str
    lines: List[str]
    tree: ast.Module
    waivers: WaiverSet


@dataclass
class Project:
    """The scanned tree, as project checkers see it."""

    root: Path
    package_dir: Path
    files: List[SourceFile]
    _by_pkg_rel: Dict[str, SourceFile] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_pkg_rel = {f.pkg_rel: f for f in self.files}

    def file(self, pkg_rel: str) -> Optional[SourceFile]:
        """The scanned file at package-relative ``pkg_rel``, if present
        (mini-trees in tests legitimately omit most of the package)."""
        return self._by_pkg_rel.get(pkg_rel)

    def read_outside(self, rel: str) -> Optional[str]:
        """Text of a root-relative file *outside* the scanned package
        (e.g. a test module a coverage contract points at), or None."""
        path = self.root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation produced."""

    root: str
    files: int
    rules: List[str]
    violations: List[Violation]
    elapsed_ms: float

    @property
    def fired(self) -> int:
        """Unwaived findings — what the exit code is keyed on."""
        return sum(1 for v in self.violations if not v.waived)

    @property
    def waived(self) -> int:
        return sum(1 for v in self.violations if v.waived)

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": REPORT_VERSION,
            "root": self.root,
            "files": self.files,
            "rules": list(self.rules),
            "violations": [
                {
                    "rule": v.rule,
                    "family": v.family,
                    "path": v.path,
                    "line": v.line,
                    "message": v.message,
                    "waived": v.waived,
                    "rationale": v.rationale,
                }
                for v in self.violations
            ],
            "summary": {
                "fired": self.fired,
                "waived": self.waived,
                "elapsed_ms": round(self.elapsed_ms, 3),
            },
        }

    def render(self) -> str:
        lines = [v.describe() for v in self.violations]
        lines.append(
            f"repro check: {self.files} files, {len(self.rules)} rules, "
            f"{self.fired} violation(s), {self.waived} waived, "
            f"{self.elapsed_ms / 1000:.2f}s"
        )
        return "\n".join(lines)


def detect_root() -> Path:
    """The repository root, derived from the installed package location
    (``src/repro/__init__.py`` -> two parents up). Editable installs and
    ``PYTHONPATH=src`` both land here; a site-packages install has no
    scannable tree and must pass ``--root`` explicitly."""
    import repro

    return Path(repro.__file__).resolve().parents[2]


def _discover(package_dir: Path) -> List[Path]:
    return sorted(
        p
        for p in package_dir.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def _load(root: Path, package_dir: Path, path: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise CheckError(
            f"cannot parse {path.relative_to(root).as_posix()}:"
            f"{exc.lineno}: {exc.msg}"
        ) from exc
    lines = text.splitlines()
    return SourceFile(
        path=path,
        rel=path.relative_to(root).as_posix(),
        pkg_rel=path.relative_to(package_dir).as_posix(),
        text=text,
        lines=lines,
        tree=tree,
        waivers=parse_waivers(text),
    )


def load_project(root: Optional[Path] = None) -> Project:
    """Discover and parse the tree under ``root`` (default: the repo the
    running package was imported from)."""
    root = Path(root).resolve() if root is not None else detect_root()
    package_dir = root / "src" / "repro"
    if not package_dir.is_dir():
        raise CheckError(
            f"no scannable package at {package_dir} "
            "(pass --root pointing at a checkout with src/repro/)"
        )
    files = [_load(root, package_dir, p) for p in _discover(package_dir)]
    return Project(root=root, package_dir=package_dir, files=files)


def _apply_waivers(project: Project, raw: Iterable[Violation]) -> List[Violation]:
    """Mark findings covered by a waiver; order deterministically."""
    out: List[Violation] = []
    by_rel = {f.rel: f for f in project.files}
    for violation in raw:
        file = by_rel.get(violation.path)
        if file is not None:
            waiver = file.waivers.covering(violation.rule, violation.line)
            if waiver is not None:
                violation.waived = True
                violation.rationale = waiver.rationale
        out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return out


def _waiver_syntax_violations(
    project: Project, known_rules: List[str]
) -> List[Violation]:
    found: List[Violation] = []
    known = set(known_rules)
    for file in project.files:
        for line, message in file.waivers.problems:
            found.append(
                Violation(
                    rule=WAIVER_SYNTAX_RULE.name,
                    family=WAIVER_SYNTAX_RULE.family,
                    path=file.rel,
                    line=line,
                    message=message,
                )
            )
        for waiver in file.waivers.waivers:
            if waiver.rule not in known:
                found.append(
                    Violation(
                        rule=WAIVER_SYNTAX_RULE.name,
                        family=WAIVER_SYNTAX_RULE.family,
                        path=file.rel,
                        line=waiver.line,
                        message=f"waiver names unknown rule {waiver.rule!r} "
                        "(see `repro check --list`)",
                    )
                )
    return found


def run_checks(
    root: Optional[Path] = None,
    rules: Optional[List[str]] = None,
) -> CheckReport:
    """Run the (optionally filtered) rule set over the tree at ``root``
    and return the full report. Raises :class:`~repro.errors.CheckError`
    when the tree cannot be scanned at all."""
    started = time.perf_counter()
    project = load_project(root)
    # waiver-syntax is engine-owned, so lift it out of the filter before
    # resolving the registry-backed checkers.
    requested = list(rules) if rules is not None else None
    include_waiver_rule = requested is None or WAIVER_SYNTAX_RULE.name in requested
    if requested is not None:
        requested = [r for r in requested if r != WAIVER_SYNTAX_RULE.name]
    selected = _checkers(requested)
    # waiver-syntax validates against the *full* catalogue even when the
    # run is rule-filtered — a waiver naming a rule that exists but is
    # filtered out today must not read as "unknown".
    from repro.checks.base import rule_names

    all_rules = rule_names() + [WAIVER_SYNTAX_RULE.name]

    raw: List[Violation] = []
    for checker in selected:
        rule = checker.rule
        if isinstance(checker, ProjectChecker):
            for pkg_rel, line, message in checker.check(project):
                file = project.file(pkg_rel)
                rel = file.rel if file is not None else (
                    (Path("src") / "repro" / pkg_rel).as_posix()
                )
                raw.append(
                    Violation(
                        rule=rule.name,
                        family=rule.family,
                        path=rel,
                        line=line,
                        message=message,
                    )
                )
        else:
            assert isinstance(checker, FileChecker)
            for file in project.files:
                if not checker.select(file):
                    continue
                for line, message in checker.check(file):
                    raw.append(
                        Violation(
                            rule=rule.name,
                            family=rule.family,
                            path=file.rel,
                            line=line,
                            message=message,
                        )
                    )

    selected_names = sorted(c.rule.name for c in selected)
    if include_waiver_rule:
        raw.extend(_waiver_syntax_violations(project, all_rules))
        selected_names = sorted(selected_names + [WAIVER_SYNTAX_RULE.name])

    violations = _apply_waivers(project, raw)
    return CheckReport(
        root=str(project.root),
        files=len(project.files),
        rules=selected_names,
        violations=violations,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
    )


def render_json(report: CheckReport) -> str:
    return json.dumps(report.to_json(), indent=1, sort_keys=True)
