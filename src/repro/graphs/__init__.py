"""Graph substrate: generators, clique covers, line graphs, hypergraphs,
structural parameters and orientations."""

from repro.graphs.cliques import CliqueCover
from repro.graphs.generators import (
    complete_graph,
    cycle,
    disjoint_cliques,
    erdos_renyi,
    fat_tree,
    forest_union,
    hypercube,
    path,
    planar_grid,
    random_bipartite_regular,
    random_regular,
    random_tree,
    shared_vertex_cliques,
    star_forest_stack,
    torus,
    triangular_grid,
)
from repro.graphs.hypergraphs import (
    Hypergraph,
    random_uniform_hypergraph,
    regular_partite_hypergraph,
)
from repro.graphs.linegraph import (
    edge_coloring_from_vertex_coloring,
    line_graph_with_cover,
    vertex_coloring_from_edge_coloring,
)
from repro.graphs.orientation import Orientation, orient_acyclic_by_order
from repro.graphs.properties import (
    ArboricityBounds,
    arboricity_bounds,
    degeneracy,
    degeneracy_ordering,
    forest_decomposition,
    max_degree,
)

__all__ = [
    "CliqueCover",
    "complete_graph",
    "cycle",
    "disjoint_cliques",
    "erdos_renyi",
    "fat_tree",
    "forest_union",
    "hypercube",
    "path",
    "planar_grid",
    "random_bipartite_regular",
    "random_regular",
    "random_tree",
    "shared_vertex_cliques",
    "star_forest_stack",
    "torus",
    "triangular_grid",
    "Hypergraph",
    "random_uniform_hypergraph",
    "regular_partite_hypergraph",
    "edge_coloring_from_vertex_coloring",
    "line_graph_with_cover",
    "vertex_coloring_from_edge_coloring",
    "Orientation",
    "orient_acyclic_by_order",
    "ArboricityBounds",
    "arboricity_bounds",
    "degeneracy",
    "degeneracy_ordering",
    "forest_decomposition",
    "max_degree",
]
