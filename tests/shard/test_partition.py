"""The contiguous id-range partitioner and the ``.csrs`` shard format:
structural invariants of a written bundle, and the strict open-time
validation (exact extents + structural checks, same posture as
``.csrg``)."""

import json
import struct

import numpy as np
import pytest

from repro import workloads
from repro.errors import InvalidParameterError
from repro.graphcore import CompactGraph
from repro.shard import ShardBundle, load_shard, partition
from repro.shard.partition import HEADER_SIZE, MANIFEST_NAME, _shard_filename


@pytest.fixture
def grid():
    return workloads.build("xl-grid", {"rows": 20, "cols": 17}, seed=0)


@pytest.fixture
def bundle(grid, tmp_path):
    return partition(grid, 4, tmp_path / "bundle")


class TestPartitionInvariants:
    def test_ranges_tile_the_id_space(self, grid, bundle):
        ranges = bundle.manifest["ranges"]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == grid.n
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, disjoint, ordered
        assert all(hi > lo for lo, hi in ranges)  # non-empty shards

    def test_local_csr_mirrors_parent_rows(self, grid, bundle):
        for s in range(bundle.num_shards):
            shard = bundle.shard(s)
            # rebased indptr equals the parent's slice
            parent_rows = grid.indptr[shard.lo : shard.hi + 1] - grid.indptr[shard.lo]
            assert np.array_equal(np.asarray(shard.indptr), parent_rows)
            # remapping is invertible: local ids map back to the parent's
            # neighbor list exactly
            local = np.asarray(shard.indices)
            halo = np.asarray(shard.halo)
            own = local < shard.n_own
            restored = np.where(
                own, local + shard.lo, halo[np.clip(local - shard.n_own, 0, None)]
            )
            parent = grid.indices[
                int(grid.indptr[shard.lo]) : int(grid.indptr[shard.hi])
            ]
            assert np.array_equal(restored, parent)

    def test_halo_and_boundary_sidebands(self, grid, bundle):
        for s in range(bundle.num_shards):
            shard = bundle.shard(s)
            halo = np.asarray(shard.halo)
            # halo: sorted unique foreign neighbors only
            assert np.all(np.diff(halo) > 0)
            assert not np.any((halo >= shard.lo) & (halo < shard.hi))
            # boundary: exactly the owned nodes with >= 1 foreign neighbor
            src = np.repeat(
                np.arange(shard.n_own), np.diff(np.asarray(shard.indptr))
            )
            has_foreign = np.unique(src[np.asarray(shard.indices) >= shard.n_own])
            assert np.array_equal(np.asarray(shard.boundary), has_foreign)

    def test_every_halo_node_is_its_owners_boundary(self, bundle):
        table = bundle.boundary_table()
        for s in range(bundle.num_shards):
            mapped = table["boundary_global"][table["halo_sources"][s]]
            assert np.array_equal(mapped, np.asarray(bundle.shard(s).halo))

    def test_single_shard_degenerate(self, grid, tmp_path):
        bundle = partition(grid, 1, tmp_path / "one")
        shard = bundle.shard(0)
        assert shard.n_own == grid.n
        assert shard.n_halo == 0
        assert shard.boundary.size == 0
        assert np.array_equal(np.asarray(shard.indices), grid.indices)

    def test_manifest_carries_parent_identity(self, grid, bundle):
        assert bundle.manifest["parent_digest"] == grid.digest()
        assert bundle.manifest["n"] == grid.n
        assert bundle.manifest["m"] == grid.m
        assert bundle.manifest["max_degree"] == grid.max_degree

    def test_more_shards_than_nodes_rejected(self, tmp_path):
        tiny = workloads.build("xl-grid", {"rows": 2, "cols": 2}, seed=0)
        with pytest.raises(InvalidParameterError, match="non-empty"):
            partition(tiny, 5, tmp_path / "nope")

    def test_non_compact_graph_rejected(self, tmp_path):
        import networkx as nx

        with pytest.raises(InvalidParameterError, match="CompactGraph"):
            partition(nx.path_graph(5), 2, tmp_path / "nope")


class TestStrictShardValidation:
    """A shard file that lies about its extents (or got truncated by a
    crashed writer) must fail at open, not fault mid-round in a worker —
    the gap ``read_info`` used to have for ``.csrg`` headers."""

    def test_truncated_shard_fails_fast(self, bundle):
        path = bundle.shard_path(1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(InvalidParameterError, match="header promises"):
            load_shard(path)

    def test_oversized_shard_fails_fast(self, bundle):
        path = bundle.shard_path(1)
        with open(path, "ab") as handle:
            handle.write(b"\x00" * 8)
        with pytest.raises(InvalidParameterError, match="header promises"):
            load_shard(path)

    def test_bad_magic_rejected(self, bundle):
        path = bundle.shard_path(0)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTSHARD"
        path.write_bytes(bytes(data))
        with pytest.raises(InvalidParameterError, match="bad magic"):
            load_shard(path)

    def test_unknown_version_rejected(self, bundle):
        path = bundle.shard_path(0)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, 99)
        path.write_bytes(bytes(data))
        with pytest.raises(InvalidParameterError, match="version 99"):
            load_shard(path)

    def test_corrupt_indptr_rejected(self, bundle):
        path = bundle.shard_path(0)
        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, HEADER_SIZE, -7)  # indptr[0] != 0
        path.write_bytes(bytes(data))
        with pytest.raises(InvalidParameterError, match="corrupt shard indptr"):
            load_shard(path)

    def test_out_of_range_indices_rejected(self, bundle):
        shard = bundle.shard(0)
        path = bundle.shard_path(0)
        offset = HEADER_SIZE + 8 * (shard.n_own + 1)  # first indices slot
        data = bytearray(path.read_bytes())
        struct.pack_into("<q", data, offset, shard.n_own + shard.n_halo + 100)
        path.write_bytes(bytes(data))
        with pytest.raises(InvalidParameterError, match="out of local range"):
            load_shard(path)

    def test_digest_mismatch_against_manifest(self, grid, bundle, tmp_path):
        other = workloads.build("xl-grid", {"rows": 17, "cols": 20}, seed=0)
        foreign = partition(other, 4, tmp_path / "foreign")
        # same shape, different parent: manifest cross-check catches it
        with pytest.raises(InvalidParameterError, match="different parent"):
            load_shard(foreign.shard_path(0), expect=bundle.manifest)

    def test_missing_shard_file_rejected_at_bundle_open(self, bundle):
        bundle.shard_path(2).unlink()
        with pytest.raises(InvalidParameterError, match="missing"):
            ShardBundle.open(bundle.directory)

    def test_foreign_manifest_rejected(self, bundle):
        manifest_path = bundle.directory / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["format"] = "something-else"
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(InvalidParameterError, match="unknown manifest"):
            ShardBundle.open(bundle.directory)

    def test_range_disagreement_with_manifest_rejected(self, bundle):
        manifest_path = bundle.directory / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["ranges"][0][1] += 1
        payload["ranges"][1][0] += 1
        manifest_path.write_text(json.dumps(payload))
        reopened = ShardBundle.open(bundle.directory)
        with pytest.raises(InvalidParameterError, match="disagrees"):
            reopened.shard(0)

    def test_filenames_are_stable(self):
        assert _shard_filename(7) == "shard-0007.csrs"
