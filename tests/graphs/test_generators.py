"""Tests for the deterministic graph generators."""

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.graphs import (
    arboricity_bounds,
    complete_graph,
    disjoint_cliques,
    erdos_renyi,
    forest_union,
    hypercube,
    max_degree,
    planar_grid,
    random_bipartite_regular,
    random_regular,
    random_tree,
    shared_vertex_cliques,
    star_forest_stack,
    triangular_grid,
)


class TestBasicGenerators:
    def test_erdos_renyi_size_and_determinism(self):
        g1 = erdos_renyi(50, 0.1, seed=3)
        g2 = erdos_renyi(50, 0.1, seed=3)
        assert g1.number_of_nodes() == 50
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_erdos_renyi_p_validation(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi(10, 1.5)

    def test_random_regular_degrees(self):
        g = random_regular(20, 6, seed=1)
        assert all(d == 6 for _, d in g.degree())

    def test_random_regular_validation(self):
        with pytest.raises(InvalidParameterError):
            random_regular(5, 5)
        with pytest.raises(InvalidParameterError):
            random_regular(7, 3)  # odd product

    def test_random_tree_is_tree(self):
        for n in (1, 2, 3, 17):
            g = random_tree(n, seed=n)
            assert g.number_of_nodes() == n
            assert nx.is_tree(g)

    def test_hypercube(self):
        g = hypercube(4)
        assert g.number_of_nodes() == 16
        assert all(d == 4 for _, d in g.degree())

    def test_grids_are_planar_with_low_arboricity(self):
        grid = planar_grid(5, 6)
        tri = triangular_grid(5, 6)
        assert arboricity_bounds(grid).upper <= 2
        assert arboricity_bounds(tri).upper <= 3
        assert nx.check_planarity(grid)[0]
        assert nx.check_planarity(tri)[0]


class TestArboricityControlled:
    @pytest.mark.parametrize("a", [1, 2, 4])
    def test_forest_union_arboricity(self, a):
        g = forest_union(40, a, seed=2)
        bounds = arboricity_bounds(g)
        assert bounds.upper <= 2 * a  # union of a forests
        assert g.number_of_edges() <= a * 39

    def test_forest_union_high_degree_vs_arboricity(self):
        g = forest_union(120, 3, seed=9)
        assert max_degree(g) > 3  # Delta well above a

    @pytest.mark.parametrize("a", [1, 2, 3])
    def test_star_forest_stack(self, a):
        g = star_forest_stack(n_centers=4, leaves_per_center=10, a=a, seed=1)
        bounds = arboricity_bounds(g)
        assert bounds.upper <= a + 1
        assert max_degree(g) >= 8  # stars concentrate degree

    def test_star_forest_validation(self):
        with pytest.raises(InvalidParameterError):
            star_forest_stack(0, 5, 1)


class TestCliqueGadgets:
    def test_disjoint_cliques(self):
        g = disjoint_cliques(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 6
        assert nx.number_connected_components(g) == 3

    def test_shared_vertex_cliques_diversity_hub(self):
        g = shared_vertex_cliques(clique_size=5, num_cliques=3)
        # hub 0 is in all three cliques
        assert g.degree(0) == 3 * 4
        assert g.number_of_nodes() == 1 + 3 * 4

    def test_shared_vertex_validation(self):
        with pytest.raises(InvalidParameterError):
            shared_vertex_cliques(1, 2)

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15


class TestBipartite:
    def test_bipartite_regular_bounded_degree(self):
        g = random_bipartite_regular(10, 4, seed=5)
        assert g.number_of_nodes() == 20
        assert max_degree(g) <= 4
        assert nx.is_bipartite(g)

    def test_bipartite_validation(self):
        with pytest.raises(InvalidParameterError):
            random_bipartite_regular(3, 4)
