"""Coloring verifiers — every invariant the paper states, checkable.

All checkers raise :class:`~repro.errors.ColoringError` (or return False when
``strict=False``) so that tests, benchmarks, and examples never accept an
improper coloring silently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.errors import ColoringError
from repro.graphs.cliques import CliqueCover
from repro.types import Edge, EdgeColoring, NodeId, VertexColoring, edge_key


def verify_vertex_coloring(
    graph: nx.Graph,
    coloring: VertexColoring,
    palette: Optional[int] = None,
    strict: bool = True,
) -> bool:
    """Check that ``coloring`` covers every vertex, is proper, and (if given)
    fits in ``palette`` colors."""
    try:
        missing = set(graph.nodes()) - set(coloring)
        if missing:
            raise ColoringError(f"{len(missing)} vertices uncolored: {sorted(missing, key=repr)[:5]!r}")
        for u, v in graph.edges():
            if coloring[u] == coloring[v]:
                raise ColoringError(f"monochromatic edge ({u!r},{v!r}) color {coloring[u]}")
        if palette is not None:
            used = len(set(coloring.values()))
            if used > palette:
                raise ColoringError(f"{used} colors used, palette allows {palette}")
    except ColoringError:
        if strict:
            raise
        return False
    return True


def verify_edge_coloring(
    graph: nx.Graph,
    coloring: EdgeColoring,
    palette: Optional[int] = None,
    strict: bool = True,
) -> bool:
    """Check that ``coloring`` covers every edge, that no two edges sharing
    an endpoint share a color, and (if given) the palette bound."""
    try:
        expected = {edge_key(u, v) for u, v in graph.edges()}
        missing = expected - set(coloring)
        if missing:
            raise ColoringError(f"{len(missing)} edges uncolored: {sorted(missing)[:5]!r}")
        for v in graph.nodes():
            seen: Dict[int, Edge] = {}
            for u in graph.neighbors(v):
                e = edge_key(u, v)
                c = coloring[e]
                if c in seen:
                    raise ColoringError(
                        f"edges {seen[c]!r} and {e!r} share color {c} at {v!r}"
                    )
                seen[c] = e
        if palette is not None:
            used = len(set(coloring.values())) if coloring else 0
            if used > palette:
                raise ColoringError(f"{used} colors used, palette allows {palette}")
    except ColoringError:
        if strict:
            raise
        return False
    return True


def max_star_size(graph: nx.Graph, edges: Iterable[Edge]) -> int:
    """The largest number of the given edges sharing one endpoint — the
    star bound of a (p, q)-star-partition class (Section 4)."""
    count: Dict[NodeId, int] = {}
    for u, v in edges:
        count[u] = count.get(u, 0) + 1
        count[v] = count.get(v, 0) + 1
    return max(count.values(), default=0)


def verify_star_partition(
    graph: nx.Graph, classes: Dict[int, List[Edge]], q: int, strict: bool = True
) -> bool:
    """Check a (p, q)-star-partition: the classes partition E(G) and every
    class has star size at most q."""
    try:
        all_edges = [e for edges in classes.values() for e in edges]
        expected = {edge_key(u, v) for u, v in graph.edges()}
        if sorted(all_edges) != sorted(expected):
            raise ColoringError("classes do not partition the edge set")
        for c, edges in classes.items():
            size = max_star_size(graph, edges)
            if size > q:
                raise ColoringError(f"class {c} has star size {size} > {q}")
    except ColoringError:
        if strict:
            raise
        return False
    return True


def verify_clique_decomposition(
    graph: nx.Graph,
    cover: CliqueCover,
    classes: Dict[int, List[NodeId]],
    max_clique: int,
    strict: bool = True,
) -> bool:
    """Check a (p, q)-clique-decomposition (Section 2): the classes partition
    V(G), and within each class every identified clique's restriction has at
    most ``max_clique`` vertices."""
    try:
        all_vertices = [v for members in classes.values() for v in members]
        if sorted(all_vertices, key=repr) != sorted(graph.nodes(), key=repr):
            raise ColoringError("classes do not partition the vertex set")
        for c, members in classes.items():
            mset = set(members)
            for clique in cover.cliques:
                inside = len(clique & mset)
                if inside > max_clique:
                    raise ColoringError(
                        f"class {c} keeps {inside} > {max_clique} vertices of a clique"
                    )
    except ColoringError:
        if strict:
            raise
        return False
    return True


def count_colors(coloring: Dict) -> int:
    return len(set(coloring.values())) if coloring else 0
