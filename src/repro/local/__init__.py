"""Synchronous LOCAL-model simulation substrate.

Public surface:

* :class:`~repro.local.network.Network` / :func:`~repro.local.network.run_on_graph`
  — build and drive a synchronous message-passing execution.
* :class:`~repro.local.algorithm.NodeAlgorithm` / :class:`~repro.local.algorithm.Context`
  — the per-node program interface.
* :class:`~repro.local.ledger.RoundLedger` — sequential/parallel round accounting.
* :mod:`~repro.local.costmodel` — closed-form round bounds of cited oracles.
"""

from repro.local.algorithm import Context, NodeAlgorithm
from repro.local.congest import estimate_payload_bits, is_congest_width
from repro.local.ledger import LedgerEntry, ParallelScope, RoundLedger
from repro.local.message import Message
from repro.local.network import DEFAULT_MAX_ROUNDS, Network, RunResult, run_on_graph
from repro.local.node import Node
from repro.local.trace import RoundTrace, Tracer

__all__ = [
    "Context",
    "NodeAlgorithm",
    "estimate_payload_bits",
    "is_congest_width",
    "LedgerEntry",
    "ParallelScope",
    "RoundLedger",
    "Message",
    "Network",
    "RunResult",
    "run_on_graph",
    "Node",
    "RoundTrace",
    "Tracer",
    "DEFAULT_MAX_ROUNDS",
]
