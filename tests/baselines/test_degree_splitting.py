"""Tests for the Euler-split degree-splitting baseline."""

import math

import networkx as nx
import pytest

from repro.analysis import verify_edge_coloring
from repro.errors import InvalidParameterError
from repro.graphs import erdos_renyi, max_degree, random_regular
from repro.baselines import degree_splitting_edge_coloring, euler_split
from repro.types import edge_key


class TestEulerSplit:
    def test_partitions_edges(self, nonempty_graph):
        h1, h2 = euler_split(nonempty_graph)
        e1 = {edge_key(u, v) for u, v in h1.edges()}
        e2 = {edge_key(u, v) for u, v in h2.edges()}
        assert e1 | e2 == {edge_key(u, v) for u, v in nonempty_graph.edges()}
        assert not (e1 & e2)

    def test_halves_degree(self, nonempty_graph):
        delta = max_degree(nonempty_graph)
        h1, h2 = euler_split(nonempty_graph)
        bound = math.ceil(delta / 2) + 1
        assert max_degree(h1) <= bound
        assert max_degree(h2) <= bound

    def test_even_degree_graph_splits_exactly(self):
        g = random_regular(20, 6, seed=1)
        h1, h2 = euler_split(g)
        for v in g.nodes():
            assert abs(h1.degree(v) - h2.degree(v)) <= 2

    def test_empty(self):
        h1, h2 = euler_split(nx.Graph())
        assert h1.number_of_edges() == h2.number_of_edges() == 0


class TestDegreeSplittingColoring:
    def test_proper(self, nonempty_graph):
        result = degree_splitting_edge_coloring(nonempty_graph)
        verify_edge_coloring(nonempty_graph, result.coloring)

    def test_roughly_two_delta_colors(self):
        g = random_regular(64, 32, seed=2)
        result = degree_splitting_edge_coloring(g, threshold=8)
        # 2 Delta (1 + eps): generous envelope for the recursion slack
        assert result.colors_used <= 3.2 * 32

    def test_levels_logarithmic_in_delta(self):
        g = random_regular(64, 32, seed=3)
        result = degree_splitting_edge_coloring(g, threshold=4)
        assert result.levels <= math.ceil(math.log2(32)) + 2

    def test_no_split_needed_below_threshold(self):
        g = nx.cycle_graph(8)
        result = degree_splitting_edge_coloring(g, threshold=8)
        assert result.levels == 0

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            degree_splitting_edge_coloring(nx.path_graph(3), threshold=0)

    def test_modeled_rounds_positive(self):
        g = random_regular(32, 16, seed=4)
        result = degree_splitting_edge_coloring(g)
        assert result.rounds_modeled > 0
