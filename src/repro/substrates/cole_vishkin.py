"""Cole–Vishkin 3-coloring of rooted forests in O(log* n) rounds.

References [12] (Cole & Vishkin) and [21] (Goldberg, Plotkin, Shannon) of
the paper: deterministic coin tossing colors oriented trees with 3 colors in
O(log* n) rounds. The paper's Section 5 pipeline rests on forest-like
structure (H-partitions, bounded out-degree orientations); this substrate
supplies the classic fast coloring for the forest case and powers the
``forest_edge_coloring`` baseline.

Algorithm:

1. **Bit reduction.** Every vertex holds a color (initially its id). Each
   round, a non-root vertex compares its color with its parent's: if ``i``
   is the lowest bit position where they differ and ``b`` is its own bit
   there, the new color is ``2i + b``. Adjacent colors stay distinct, and an
   m-color palette shrinks to ``2 * ceil(log2 m)`` colors per round — after
   O(log* n) rounds the palette is {0..5}.
2. **Shift-down + reduce.** Three phases remove colors 5, 4, 3: first every
   vertex adopts its parent's previous color (roots re-pick against their
   now-uniform children), then the eliminated class re-picks from {0, 1, 2}
   (only two constraints remain: the parent color and the single shared
   children color).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import networkx as nx

from repro.errors import InvalidParameterError
from repro.local import Context, Message, Node, NodeAlgorithm, RoundLedger, run_on_graph
from repro.local.costmodel import log_star
from repro.types import NodeId, VertexColoring


def root_forest(forest: nx.Graph) -> Dict[NodeId, Optional[NodeId]]:
    """Root every tree of the forest at its maximum-repr vertex and return
    the parent map (None for roots).

    In the oriented-tree LOCAL model of [12, 21] the orientation is given;
    here we derive one deterministically. The rooting itself would cost
    O(diameter) distributedly — callers who already own an orientation
    (H-partitions, forest decompositions) pass their own parent map instead.
    """
    if hasattr(forest, "indptr") and hasattr(forest, "indices"):
        return _root_forest_csr(forest)
    if not nx.is_forest(forest):
        raise InvalidParameterError("root_forest requires a forest")
    parent: Dict[NodeId, Optional[NodeId]] = {}
    for component in nx.connected_components(forest):
        root = max(component, key=repr)
        parent[root] = None
        for child, par in nx.bfs_predecessors(forest.subgraph(component), root):
            parent[child] = par
    return parent


def _root_forest_csr(forest) -> Dict[NodeId, Optional[NodeId]]:
    """The CSR twin of the networkx branch: same parent map (parents in a
    tree are traversal-independent — the unique neighbor toward the root),
    same roots (each component's maximum-repr vertex), with the forest
    check folded into the traversal (a visited non-parent neighbor is a
    cycle)."""
    from collections import deque

    from repro.kernels.segments import repr_rank_order

    n = forest.n
    flat = forest.indices.tolist()
    bounds = forest.indptr.tolist()
    parent: Dict[NodeId, Optional[NodeId]] = {}
    visited = [False] * n
    # Descending repr order: the first unvisited vertex of a component is
    # exactly max(component, key=repr).
    for start in repr_rank_order(n).tolist()[::-1]:
        if visited[start]:
            continue
        parent[start] = None
        visited[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            par = parent[u]
            for w in flat[bounds[u] : bounds[u + 1]]:
                if w == par:
                    continue
                if visited[w]:
                    raise InvalidParameterError("root_forest requires a forest")
                visited[w] = True
                parent[w] = u
                queue.append(w)
    return parent


def _lowest_differing_bit(a: int, b: int) -> int:
    diff = a ^ b
    if diff == 0:
        raise InvalidParameterError("colors must differ between parent and child")
    return (diff & -diff).bit_length() - 1


def cv_iterations(m0: int) -> int:
    """Bit-reduction rounds needed from an m0-palette to the {0..5} fixed
    point, plus one safety round (extra rounds preserve properness)."""
    iterations = 0
    m = max(m0, 2)
    while m > 6:
        m = 2 * math.ceil(math.log2(m))
        iterations += 1
    return iterations + 1


class ColeVishkinAlgorithm(NodeAlgorithm):
    """One bit-reduction iteration per round, `iterations` rounds total.

    Context extras:
        parent: node -> parent id (None for roots).
        initial_coloring: node -> starting color.
        iterations: globally computed round count (all nodes know n).
    """

    name = "cole-vishkin"

    def _send_to_tree_neighbors(self, node: Node, ctx: Context, color: int) -> None:
        parent = ctx.extras["parent"].get(node.id)
        for nbr in node.neighbors:
            if nbr == parent or ctx.extras["parent"].get(nbr) == node.id:
                node.send(nbr, color)

    def initialize(self, node: Node, ctx: Context) -> None:
        color = ctx.node_input(node.id, "initial_coloring")
        node.state["color"] = color
        node.state["output"] = color
        node.state["parent_color"] = None
        if ctx.extras["iterations"] == 0:
            node.halt()
            return
        self._send_to_tree_neighbors(node, ctx, color)

    def step(self, node: Node, inbox: List[Message], round_no: int, ctx: Context) -> None:
        parent = ctx.extras["parent"].get(node.id)
        for msg in inbox:
            if msg.sender == parent:
                node.state["parent_color"] = msg.payload
        color = node.state["color"]
        if parent is None:
            new_color = color & 1  # roots re-encode as (bit position 0, own bit)
        else:
            i = _lowest_differing_bit(color, node.state["parent_color"])
            new_color = 2 * i + ((color >> i) & 1)
        node.state["color"] = new_color
        node.state["output"] = new_color
        if round_no >= ctx.extras["iterations"]:
            node.halt()
        else:
            self._send_to_tree_neighbors(node, ctx, new_color)


def _shift_down_and_reduce(
    forest: nx.Graph,
    parent: Dict[NodeId, Optional[NodeId]],
    coloring: VertexColoring,
) -> VertexColoring:
    """Three 2-round phases eliminating colors 5, 4, 3 (all local steps:
    each vertex consults only its parent and children)."""
    children: Dict[NodeId, List[NodeId]] = {v: [] for v in forest.nodes()}
    for child, par in parent.items():
        if par is not None:
            children[par].append(child)
    for eliminated in (5, 4, 3):
        # Shift down: everyone adopts the parent's previous color; roots
        # re-pick against their now-uniform children.
        shifted: VertexColoring = {}
        for v in forest.nodes():
            par = parent[v]
            if par is not None:
                shifted[v] = coloring[par]
        for v in forest.nodes():
            if parent[v] is None:
                blocked = {shifted[ch] for ch in children[v]}
                shifted[v] = next(c for c in range(3) if c not in blocked)
        coloring = shifted
        # The eliminated class re-picks from {0, 1, 2}: at most two
        # constraints (parent color; the single shared children color).
        for v in sorted(forest.nodes(), key=repr):
            if coloring[v] == eliminated:
                blocked = {coloring[ch] for ch in children[v]}
                par = parent[v]
                if par is not None:
                    blocked.add(coloring[par])
                coloring[v] = next(c for c in range(3) if c not in blocked)
    return coloring


def cole_vishkin_forest_coloring(
    forest: nx.Graph,
    parent: Optional[Dict[NodeId, Optional[NodeId]]] = None,
    ledger: Optional[RoundLedger] = None,
) -> VertexColoring:
    """A proper 3-coloring of a forest in O(log* n) rounds.

    ``parent`` may carry a precomputed rooting (every non-root points to its
    parent); otherwise each tree is rooted deterministically.
    """
    if forest.number_of_nodes() == 0:
        return {}
    if parent is None:
        parent = root_forest(forest)
    missing = set(forest.nodes()) - set(parent)
    if missing:
        raise InvalidParameterError(f"parent map misses vertices {missing!r}")

    from repro.kernels.segments import repr_sorted_nodes

    ordered = repr_sorted_nodes(forest)
    initial = {v: i for i, v in enumerate(ordered)}
    iterations = cv_iterations(len(ordered))
    result = run_on_graph(
        forest,
        ColeVishkinAlgorithm(),
        extras={
            "parent": parent,
            "initial_coloring": initial,
            "iterations": iterations,
        },
    )
    coloring = _shift_down_and_reduce(forest, parent, dict(result.outputs))
    if ledger is not None:
        ledger.add(
            "cole-vishkin",
            actual=result.rounds + 6,
            modeled=log_star(forest.number_of_nodes()) + 6,
        )
    return coloring


# ---------------------------------------------------------------- registry

from repro import registry as _registry
from repro.types import num_colors as _num_colors


def _run_cole_vishkin(forest: nx.Graph) -> _registry.AlgorithmRun:
    ledger = RoundLedger(label="cole-vishkin")
    coloring = cole_vishkin_forest_coloring(forest, ledger=ledger)
    return _registry.AlgorithmRun(
        name="cole-vishkin",
        kind="vertex-coloring",
        coloring=coloring,
        colors_used=_num_colors(coloring),
        rounds_actual=ledger.total_actual,
        rounds_modeled=ledger.total_modeled,
    )


_registry.register(
    _registry.AlgorithmSpec(
        name="cole-vishkin",
        family="substrate",
        kind="vertex-coloring",
        summary="Cole-Vishkin 3-coloring of rooted forests",
        color_bound="3",
        rounds_bound="O(log* n)",
        runner=_run_cole_vishkin,
        invariants=("proper-vertex-coloring", "palette-bound"),
        requires=("forest",),
        # root_forest has a CSR branch; everything else is duck-typed
        # reads + run_on_graph (the cole-vishkin kernel at scale).
        compact_ok=True,
    )
)
