#!/usr/bin/env bash
# CI entry point: byte-compile everything (so import-time registry errors
# fail fast, before any test runs), then run the tier-1 suite.
#
# Usage: tools/ci.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall (import-time registry safety) =="
python -m compileall -q src tests benchmarks examples tools

echo "== registry loads and is populated =="
python -c "
from repro import registry
names = registry.names()
assert len(names) >= 20, f'registry unexpectedly small: {names}'
print(f'{len(names)} algorithms registered')
"

echo "== tier-1 pytest =="
python -m pytest -x -q "$@"

echo "== store smoke: run, kill, resume, compare =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
SMOKE_GRID=(--algorithms star4,star,thm52,forest,greedy
            --workloads random-regular,star-forest-stack
            --seeds 0,1,2 --jobs 2)
# Start a campaign and SIGKILL it mid-flight; completed cells are already
# durable in the store.
timeout -s KILL 1 python -m repro campaign cells \
  --store "$SMOKE_DIR/killed.db" "${SMOKE_GRID[@]}" >/dev/null 2>&1 || true
# Resume the killed campaign, and run the same grid uninterrupted.
python -m repro campaign cells --store "$SMOKE_DIR/killed.db" --resume \
  "${SMOKE_GRID[@]}" | tail -1
python -m repro campaign cells --store "$SMOKE_DIR/clean.db" \
  "${SMOKE_GRID[@]}" >/dev/null
# The resumed store must be byte-identical to the uninterrupted one on the
# deterministic column set.
python -m repro query --store "$SMOKE_DIR/killed.db" --format json --out "$SMOKE_DIR/killed.json" >/dev/null
python -m repro query --store "$SMOKE_DIR/clean.db" --format json --out "$SMOKE_DIR/clean.json" >/dev/null
cmp "$SMOKE_DIR/killed.json" "$SMOKE_DIR/clean.json"
echo "resumed campaign is byte-identical to an uninterrupted run"
