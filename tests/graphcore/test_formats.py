"""The .csrg on-disk format: round trips, mmap, corruption, ingestion."""

import numpy as np
import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.graphcore import (
    CompactGraph,
    build_grid,
    from_edge_array,
    load,
    read_edge_list,
    read_info,
    read_metis,
    save,
    write_edge_list,
)
from repro.graphcore.formats import HEADER_SIZE


@pytest.fixture
def grid(tmp_path):
    graph = build_grid(6, 7)
    path = tmp_path / "g.csrg"
    digest = save(graph, path)
    return graph, path, digest


class TestSaveLoad:
    def test_round_trip(self, grid):
        graph, path, digest = grid
        loaded = load(path)
        assert loaded.digest() == graph.digest() == digest
        assert loaded.indptr.tolist() == graph.indptr.tolist()
        assert loaded.indices.tolist() == graph.indices.tolist()

    def test_mmap_round_trip(self, grid):
        graph, path, _ = grid
        mapped = load(path, mmap=True)
        assert isinstance(mapped.indices, np.memmap)
        assert mapped.digest() == graph.digest()
        assert mapped.neighbors(0) == graph.neighbors(0)

    def test_mmap_arrays_are_read_only(self, grid):
        _, path, _ = grid
        mapped = load(path, mmap=True)
        with pytest.raises((ValueError, OSError)):
            mapped.indices[0] = 1

    def test_read_info_matches(self, grid):
        graph, path, digest = grid
        info = read_info(path)
        assert info["n"] == graph.n and info["m"] == graph.m
        assert info["digest"] == digest
        assert info["version"] == 1
        assert not info["has_labels"] and not info["has_node_attrs"]

    def test_sidebands_survive(self, tmp_path):
        g = nx.random_geometric_graph(10, 0.6, seed=2)
        g = nx.relabel_nodes(g, {v: f"v{v}" for v in g})
        c = CompactGraph.from_networkx(g)
        path = tmp_path / "s.csrg"
        save(c, path)
        for mmap in (False, True):
            back = load(path, mmap=mmap)
            assert nx.utils.graphs_equal(back.to_networkx(), g)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "e.csrg"
        save(from_edge_array(0, np.empty((0, 2))), path)
        assert load(path).n == 0


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.csrg"
        path.write_bytes(b"NOTAGRPH" + b"\0" * 100)
        with pytest.raises(InvalidParameterError, match="magic"):
            load(path)

    def test_unsupported_version(self, grid):
        _, path, _ = grid
        raw = bytearray(path.read_bytes())
        raw[8] = 99  # version field
        path.write_bytes(bytes(raw))
        with pytest.raises(InvalidParameterError, match="version"):
            load(path)

    def test_truncated_file(self, grid):
        _, path, _ = grid
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(InvalidParameterError, match="bytes"):
            load(path)

    def test_truncated_file_fails_fast_under_mmap(self, grid):
        # the extent check must run before any page is mapped: a worker
        # that mmaps a truncated shard would otherwise fault mid-round
        _, path, _ = grid
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(InvalidParameterError, match="bytes"):
            load(path, mmap=True)

    def test_oversized_file_rejected(self, grid):
        _, path, _ = grid
        path.write_bytes(path.read_bytes() + b"\0" * 16)
        for mmap in (False, True):
            with pytest.raises(InvalidParameterError, match="bytes"):
                load(path, mmap=mmap)

    def test_read_info_checks_extents(self, grid):
        _, path, _ = grid
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(InvalidParameterError, match="bytes"):
            read_info(path)

    def test_flipped_payload_caught(self, grid):
        _, path, _ = grid
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 8] ^= 1  # flip a bit inside indptr
        path.write_bytes(bytes(raw))
        # the structural pre-check or the digest flags it — either way a
        # corrupted payload never comes back as a graph
        with pytest.raises(InvalidParameterError, match="corrupt|digest"):
            load(path, verify=True)

    def test_mmap_skips_digest_by_default(self, grid):
        # documented trade-off: mmap opens must stay O(1); flip a bit that
        # keeps the CSR structurally valid under the light checks (node
        # 41's row [34, 40] -> [35, 40]: sorted, in-range, no self-loop,
        # merely asymmetric) so only the digest can catch it
        _, path, _ = grid
        raw = bytearray(path.read_bytes())
        raw[-8] ^= 1  # second-to-last int32 index: 34 -> 35
        path.write_bytes(bytes(raw))
        load(path, mmap=True)  # no digest pass
        with pytest.raises(InvalidParameterError, match="digest"):
            load(path, mmap=True, verify=True)

    def test_mmap_still_rejects_structural_corruption(self, grid):
        # a self-loop / out-of-range id must never reach the engines,
        # even through the no-digest mmap path
        graph, path, _ = grid
        raw = bytearray(path.read_bytes())
        # overwrite row 0's first neighbor (int32 at the start of the
        # indices region) with node 0 itself -> self-loop
        offset = HEADER_SIZE + (graph.n + 1) * 8
        raw[offset : offset + 4] = (0).to_bytes(4, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(InvalidParameterError, match="corrupt"):
            load(path, mmap=True)


class TestTextIngestion:
    def test_edge_list_round_trip(self, tmp_path):
        graph = build_grid(4, 9)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        assert read_edge_list(path).digest() == graph.digest()

    def test_edge_list_matches_repro_io(self, tmp_path):
        # the streaming reader accepts exactly repro.io's format,
        # isolated-node lines and comments included
        from repro import io as repro_io

        g = nx.Graph([(0, 1), (2, 3)])
        g.add_nodes_from([4, 5])
        path = tmp_path / "g.txt"
        repro_io.write_edge_list(g, path)
        c = read_edge_list(path)
        assert nx.utils.graphs_equal(c.to_networkx(), g)

    def test_edge_list_sparse_ids_match_repro_io(self, tmp_path):
        # no phantom nodes: `5 7` is a two-node graph, exactly as
        # repro.io reads it, with the original ids in the label sideband
        from repro import io as repro_io

        path = tmp_path / "sparse.txt"
        path.write_text("5 7\n42\n")
        c = read_edge_list(path)
        g = repro_io.read_edge_list(path)
        assert c.n == 3 == g.number_of_nodes()
        assert nx.utils.graphs_equal(c.to_networkx(), g)

    def test_edge_list_rejects_self_loop(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n")
        with pytest.raises(InvalidParameterError, match="self-loop"):
            read_edge_list(path)

    def test_metis_round_trip(self, tmp_path):
        graph = build_grid(5, 5)
        path = tmp_path / "g.metis"
        lines = [f"{graph.n} {graph.m}"]
        for v in graph.nodes():
            lines.append(" ".join(str(u + 1) for u in graph.neighbors(v)))
        path.write_text("\n".join(lines) + "\n")
        assert read_metis(path).digest() == graph.digest()

    def test_metis_rejects_weighted(self, tmp_path):
        path = tmp_path / "w.metis"
        path.write_text("2 1 1\n2 3\n1 3\n")
        with pytest.raises(InvalidParameterError, match="weighted"):
            read_metis(path)

    def test_metis_edge_count_checked(self, tmp_path):
        path = tmp_path / "m.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(InvalidParameterError, match="declares"):
            read_metis(path)
