"""The schema-freeze baseline: checked-in fingerprints of every frozen
schema surface, compared purely statically.

Three surfaces make resumed campaigns, stored runs and traces
byte-comparable across sessions; all three are frozen here:

* **store** — ``STABLE_COLUMNS`` + ``SCHEMA_VERSION``
  (``src/repro/store/store.py``): the deterministic column set that
  resume/diff comparisons and ``query --format json`` emit.
* **trace_event** — ``EVENT_SCHEMA_VERSION`` + the required/optional
  field sets and event kinds (``src/repro/obs/schema.py``).
* **metrics** — ``METRICS_VERSION`` (``src/repro/analysis/campaign.py``):
  the per-cell observability blob stamp.

``schema_baseline.json`` (checked in next to this module) records each
surface's version and a sha256 fingerprint of its shape, extracted from
the *source AST* — the rule runs without importing the tree, so a
schema-breaking edit is caught even when it also breaks imports. Any
drift from the baseline is a violation: same version + changed shape
means "bump the version"; bumped version means "regenerate the baseline"
(``repro check --update-baseline``) so the bump is an explicit, reviewed
act rather than a side effect.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import CheckError

BASELINE_NAME = "schema_baseline.json"

#: surface name -> (package-relative source file, version constant,
#: shape constants fingerprinted alongside it)
SCHEMA_SURFACES = {
    "store": ("store/store.py", "SCHEMA_VERSION", ("STABLE_COLUMNS",)),
    "trace_event": (
        "obs/schema.py",
        "EVENT_SCHEMA_VERSION",
        ("_REQUIRED", "_OPTIONAL", "EVENT_KINDS"),
    ),
    "metrics": ("analysis/campaign.py", "METRICS_VERSION", ()),
}


def baseline_path(root: Path) -> Path:
    return Path(root) / "src" / "repro" / "checks" / BASELINE_NAME


def module_constants(tree: ast.Module, names: List[str]) -> Dict[str, Any]:
    """Literal values of module-level assignments to ``names`` (tuples,
    strings, ints — anything :func:`ast.literal_eval` accepts), with the
    assignment line recorded under ``"<name>__line"``."""
    wanted = set(names)
    out: Dict[str, Any] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id in wanted:
                try:
                    out[target.id] = ast.literal_eval(value)
                except ValueError:
                    continue  # non-literal assignment to a tracked name
                out[target.id + "__line"] = node.lineno
    return out


def fingerprint(value: Any) -> str:
    """sha256 of the canonical-JSON shape of ``value``."""
    payload = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def extract_schema_facts(project) -> Dict[str, Dict[str, Any]]:
    """Version + shape fingerprint of every schema surface present in the
    scanned tree (absent source files are simply omitted — mini-trees in
    tests scan a handful of planted files)."""
    facts: Dict[str, Dict[str, Any]] = {}
    for surface, (pkg_rel, version_name, shape_names) in sorted(
        SCHEMA_SURFACES.items()
    ):
        file = project.file(pkg_rel)
        if file is None:
            continue
        constants = module_constants(
            file.tree, [version_name, *shape_names]
        )
        if version_name not in constants:
            continue
        shape = {name: _as_jsonable(constants.get(name)) for name in shape_names}
        facts[surface] = {
            "path": pkg_rel,
            "version": constants[version_name],
            "version_line": constants[version_name + "__line"],
            "fingerprint": fingerprint(shape) if shape_names else None,
            "shape_lines": {
                name: constants.get(name + "__line")
                for name in shape_names
                if name + "__line" in constants
            },
        }
    return facts


def _as_jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_as_jsonable(v) for v in value]
    return value


def load_baseline(root: Path) -> Optional[Dict[str, Any]]:
    path = baseline_path(root)
    if not path.is_file():
        return None
    try:
        decoded = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CheckError(f"corrupt schema baseline at {path}: {exc}") from exc
    if not isinstance(decoded, dict):
        raise CheckError(f"corrupt schema baseline at {path}: not an object")
    return decoded


def write_baseline(root: Optional[Path] = None) -> Path:
    """Regenerate ``schema_baseline.json`` from the tree at ``root`` —
    the explicit act that accompanies a deliberate schema change."""
    from repro.checks.engine import load_project

    project = load_project(root)
    facts = extract_schema_facts(project)
    if not facts:
        raise CheckError(
            "no schema surfaces found under "
            f"{project.package_dir} — refusing to write an empty baseline"
        )
    payload = {
        surface: {"version": entry["version"], "fingerprint": entry["fingerprint"]}
        for surface, entry in sorted(facts.items())
    }
    path = baseline_path(project.root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
