"""Tests for the three connector constructions (Figures 1-3)."""

import math

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.graphs import (
    CliqueCover,
    disjoint_cliques,
    erdos_renyi,
    line_graph_with_cover,
    max_degree,
    orient_acyclic_by_order,
    random_regular,
    shared_vertex_cliques,
)
from repro.core import (
    build_clique_connector,
    build_edge_connector,
    build_orientation_connector,
)
from repro.substrates import h_partition
from repro.types import edge_key


class TestCliqueConnector:
    def test_lemma_2_1_degree_bound(self):
        # Delta(G') <= D * (t - 1) on the figure-1 gadget and line graphs.
        for t in (2, 3, 4):
            g = shared_vertex_cliques(clique_size=9, num_cliques=3)
            cover = CliqueCover.from_maximal_cliques(g)
            connector = build_clique_connector(g, cover, t)
            assert max_degree(connector) <= cover.diversity() * (t - 1)

    def test_lemma_2_1_on_line_graphs(self):
        base = random_regular(20, 6, seed=2)
        line, cover = line_graph_with_cover(base)
        for t in (2, 3):
            connector = build_clique_connector(line, cover, t)
            assert max_degree(connector) <= 2 * (t - 1)

    def test_connector_edges_subset_of_graph(self):
        g = shared_vertex_cliques(6, 2)
        cover = CliqueCover.from_maximal_cliques(g)
        connector = build_clique_connector(g, cover, 3)
        for u, v in connector.edges():
            assert g.has_edge(u, v)

    def test_same_vertex_set(self):
        g = disjoint_cliques(2, 5)
        cover = CliqueCover.from_maximal_cliques(g)
        connector = build_clique_connector(g, cover, 2)
        assert set(connector.nodes()) == set(g.nodes())

    def test_groups_are_cliques_in_connector(self):
        g = disjoint_cliques(1, 8)
        cover = CliqueCover.from_maximal_cliques(g)
        t = 4
        connector = build_clique_connector(g, cover, t)
        groups = cover.partition_clique(0, t)
        for group in groups:
            for i, u in enumerate(group):
                for v in group[i + 1 :]:
                    assert connector.has_edge(u, v)

    def test_t_at_least_clique_size_keeps_all_edges(self):
        g = disjoint_cliques(1, 5)
        cover = CliqueCover.from_maximal_cliques(g)
        connector = build_clique_connector(g, cover, 5)
        assert connector.number_of_edges() == g.number_of_edges()

    def test_t_validation(self):
        g = nx.complete_graph(3)
        cover = CliqueCover.from_maximal_cliques(g)
        with pytest.raises(InvalidParameterError):
            build_clique_connector(g, cover, 1)


class TestEdgeConnector:
    def test_degree_bound_is_t(self, nonempty_graph):
        for t in (1, 2, 3):
            connector = build_edge_connector(nonempty_graph, t)
            assert max_degree(connector.graph) <= t

    def test_edge_bijection(self, nonempty_graph):
        connector = build_edge_connector(nonempty_graph, 3)
        assert len(connector.edge_map) == nonempty_graph.number_of_edges()
        assert len(set(connector.edge_map.values())) == len(connector.edge_map)
        assert connector.graph.number_of_edges() == nonempty_graph.number_of_edges()

    def test_virtual_vertex_count(self):
        g = nx.star_graph(10)  # center degree 10
        connector = build_edge_connector(g, 3)
        center_virtuals = [v for v in connector.graph.nodes() if v[0] == 0]
        assert len(center_virtuals) == math.ceil(10 / 3)

    def test_class_star_bound(self):
        # a proper edge coloring of the connector induces classes with star
        # size at most ceil(Delta/t) (Section 4)
        from repro.substrates import ColoringOracle
        from repro.analysis import max_star_size

        g = random_regular(16, 8, seed=3)
        t = 3
        connector = build_edge_connector(g, t)
        coloring = ColoringOracle().edge_coloring(connector.graph)
        classes = connector.classes(coloring)
        k = math.ceil(8 / t)
        for edges in classes.values():
            assert max_star_size(g, edges) <= k

    def test_projection(self):
        g = nx.path_graph(4)
        connector = build_edge_connector(g, 2)
        coloring = {ce: i for i, ce in enumerate(connector.edge_map.values())}
        projected = connector.project_edge_coloring(coloring)
        assert set(projected) == {edge_key(u, v) for u, v in g.edges()}

    def test_t_validation(self):
        with pytest.raises(InvalidParameterError):
            build_edge_connector(nx.path_graph(3), 0)


class TestOrientationConnector:
    def _oriented(self, graph):
        hp = h_partition(graph)
        return hp.orientation()

    def test_degree_bound(self):
        g = erdos_renyi(40, 0.15, seed=4)
        orientation = self._oriented(g)
        connector = build_orientation_connector(
            g, orientation, in_group_size=3, out_group_size=2
        )
        assert max_degree(connector.graph) <= 3 + 2

    def test_inherited_orientation_acyclic(self):
        g = erdos_renyi(30, 0.2, seed=5)
        orientation = self._oriented(g)
        connector = build_orientation_connector(
            g, orientation, in_group_size=2, out_group_size=2
        )
        assert connector.orientation.is_acyclic()

    def test_out_degree_bounded_by_out_group(self):
        g = erdos_renyi(30, 0.2, seed=6)
        orientation = self._oriented(g)
        for g_out in (1, 2, 3):
            connector = build_orientation_connector(
                g, orientation, in_group_size=4, out_group_size=g_out
            )
            assert connector.orientation.max_out_degree() <= g_out

    def test_edge_bijection(self):
        g = erdos_renyi(25, 0.2, seed=7)
        orientation = self._oriented(g)
        connector = build_orientation_connector(g, orientation, 3, 2)
        assert len(connector.edge_map) == g.number_of_edges()
        assert len(set(connector.edge_map.values())) == g.number_of_edges()

    def test_bipartite_variant(self):
        g = erdos_renyi(30, 0.2, seed=8)
        orientation = self._oriented(g)
        connector = build_orientation_connector(
            g, orientation, in_group_size=3, out_group_size=2, bipartite=True
        )
        assert connector.side is not None
        assert nx.is_bipartite(connector.graph)
        for u, v in connector.graph.edges():
            assert connector.side[u] != connector.side[v]

    def test_bipartite_side_degrees(self):
        g = erdos_renyi(30, 0.25, seed=9)
        orientation = self._oriented(g)
        g_in, g_out = 4, 2
        connector = build_orientation_connector(
            g, orientation, g_in, g_out, bipartite=True
        )
        for v in connector.graph.nodes():
            if connector.side[v] == "in":
                assert connector.graph.degree(v) <= g_in
            else:
                assert connector.graph.degree(v) <= g_out

    def test_group_size_validation(self):
        g = nx.path_graph(3)
        orientation = orient_acyclic_by_order(g, [0, 1, 2])
        with pytest.raises(InvalidParameterError):
            build_orientation_connector(g, orientation, 0, 1)
