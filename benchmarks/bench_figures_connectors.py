"""Benchmark: Figures 1-3 — the three connector constructions.

Each figure benchmark builds the paper's gadget, applies the construction,
and records the degree bound check in extra_info.
"""

import pytest

from repro.analysis import (
    figure1_clique_connector,
    figure2_edge_connector,
    figure3_orientation_connector,
)

FIGURES = [
    pytest.param(lambda: figure1_clique_connector(t=4, clique_size=8), id="figure1"),
    pytest.param(lambda: figure2_edge_connector(t=3, star_size=7), id="figure2"),
    pytest.param(
        lambda: figure3_orientation_connector(in_group=3, out_group=2), id="figure3"
    ),
]


@pytest.mark.parametrize("build", FIGURES)
def test_figure(benchmark, record_info, build):
    report = benchmark(build)
    assert report.within_bound
    record_info(
        benchmark,
        {
            "experiment": report.name,
            "base_max_degree": report.base_max_degree,
            "connector_max_degree": report.connector_max_degree,
            "degree_bound": report.degree_bound,
            "connector_nodes": report.connector_nodes,
            "connector_edges": report.connector_edges,
        },
    )
