"""Serialization helpers: edge lists and colorings on disk.

File formats:

* **Edge list** — one ``u v`` pair per line, ``#`` comments allowed,
  integer vertex ids (the format `networkx` and most graph tools exchange).
* **Colorings** — JSON. Vertex colorings are ``{"type": "vertex",
  "colors": {str(v): color}}``; edge colorings are ``{"type": "edge",
  "colors": [[u, v, color], ...]}`` (edges as canonical pairs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import networkx as nx

from repro.errors import InvalidParameterError
from repro.types import EdgeColoring, VertexColoring, edge_key

PathLike = Union[str, Path]


def read_edge_list(path: PathLike) -> nx.Graph:
    """Read a whitespace-separated integer edge list (``#`` comments)."""
    graph = nx.Graph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) == 1:
                graph.add_node(int(parts[0]))
                continue
            if len(parts) != 2:
                raise InvalidParameterError(
                    f"{path}:{line_no}: expected 'u v', got {raw.rstrip()!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                raise InvalidParameterError(f"{path}:{line_no}: self-loop {u}")
            graph.add_edge(u, v)
    return graph


def write_edge_list(graph: nx.Graph, path: PathLike) -> None:
    """Write an integer edge list (isolated vertices as single-id lines)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# n={graph.number_of_nodes()} m={graph.number_of_edges()}\n")
        for v in sorted(graph.nodes()):
            if graph.degree(v) == 0:
                handle.write(f"{v}\n")
        for u, v in sorted(edge_key(a, b) for a, b in graph.edges()):
            handle.write(f"{u} {v}\n")


def save_vertex_coloring(coloring: VertexColoring, path: PathLike) -> None:
    payload = {
        "type": "vertex",
        "colors": {str(v): int(c) for v, c in sorted(coloring.items(), key=lambda kv: repr(kv[0]))},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def save_edge_coloring(coloring: EdgeColoring, path: PathLike) -> None:
    rows = sorted([int(u), int(v), int(c)] for (u, v), c in coloring.items())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"type": "edge", "colors": rows}, handle, indent=1)


def load_vertex_coloring(path: PathLike) -> VertexColoring:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("type") != "vertex":
        raise InvalidParameterError(f"{path}: not a vertex coloring file")
    return {int(v): int(c) for v, c in payload["colors"].items()}


def load_edge_coloring(path: PathLike) -> EdgeColoring:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("type") != "edge":
        raise InvalidParameterError(f"{path}: not an edge coloring file")
    return {edge_key(u, v): int(c) for u, v, c in payload["colors"]}


# A qualitative palette (12 distinguishable hues) recycled for larger
# palettes with shade suffixes understood by graphviz.
_DOT_COLORS = (
    "red", "blue", "green", "orange", "purple", "brown",
    "cyan", "magenta", "gold", "gray40", "darkgreen", "navy",
)


def _dot_color(c: int) -> str:
    return _DOT_COLORS[c % len(_DOT_COLORS)]


def write_colored_dot(
    graph: nx.Graph,
    path: PathLike,
    edge_coloring: EdgeColoring | None = None,
    vertex_coloring: VertexColoring | None = None,
    name: str = "coloring",
) -> None:
    """Write a graphviz DOT file with edges and/or vertices colored.

    Color indices map to a recycled qualitative palette; the numeric color
    is also attached as a label so palettes beyond 12 stay readable.
    """
    lines = [f'graph "{name}" {{']
    for v in sorted(graph.nodes(), key=repr):
        attrs = ""
        if vertex_coloring is not None:
            c = vertex_coloring[v]
            attrs = (
                f' [style=filled, fillcolor={_dot_color(c)}, label="{v} ({c})"]'
            )
        lines.append(f'  "{v}"{attrs};')
    for u, v in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        attrs = ""
        if edge_coloring is not None:
            c = edge_coloring[edge_key(u, v)]
            attrs = f' [color={_dot_color(c)}, label="{c}"]'
        lines.append(f'  "{u}" -- "{v}"{attrs};')
    lines.append("}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
