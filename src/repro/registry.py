"""Unified algorithm registry.

Every runnable coloring algorithm in ``repro.core``, ``repro.substrates``
and ``repro.baselines`` self-registers an :class:`AlgorithmSpec` at import
time: a stable name, its family and output kind, the paper's color/round
guarantees, the graph properties it needs, and a uniform
``runner(graph, **params) -> AlgorithmRun`` adapter. The CLI, the
experiment harnesses, the campaign runner and the benchmarks all resolve
algorithms through this table instead of importing algorithm functions
directly, so a new algorithm becomes a CLI subcommand choice, a campaign
cell and a parity-test subject by registering itself once.

Engine selection composes orthogonally: ``run(name, graph, engine="vector")``
scopes the whole invocation with :func:`repro.engine.use_engine`.

Example::

    from repro import registry

    run = registry.run("star4", graph)
    print(run.colors_used, run.rounds_actual)

    for spec in registry.specs(kind="edge-coloring"):
        print(spec.name, spec.color_bound)
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import InvalidParameterError

#: Families an algorithm may belong to.
FAMILIES = ("core", "baseline", "substrate")

#: Output kinds. ``edge-coloring`` maps canonical edges to colors,
#: ``vertex-coloring`` maps vertices, ``decomposition`` maps vertices to
#: structural labels (e.g. H-partition levels).
KINDS = ("edge-coloring", "vertex-coloring", "decomposition")


@dataclass
class AlgorithmRun:
    """Normalized outcome of one registry-resolved execution."""

    name: str
    kind: str
    coloring: Dict[Any, int]
    colors_used: int
    rounds_actual: Optional[float] = None
    rounds_modeled: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata + runner for one registered algorithm.

    ``requires`` names graph properties the guarantee depends on (e.g.
    ``bounded-arboricity``); purely informational for callers assembling
    workloads. ``params`` lists the keyword arguments the runner accepts —
    :func:`run` rejects anything else eagerly so campaign grids fail fast.
    ``invariants`` names the :mod:`repro.verify` oracles this algorithm's
    output must satisfy; an empty tuple falls back to the kind-level
    defaults (properness + claimed palette bound) at verification time.
    ``compact_ok`` marks runners that consume the duck-typed read API of
    :class:`~repro.graphcore.CompactGraph` directly (no networkx surface
    beyond nodes/edges/neighbors/degree): :func:`run` hands them compact
    inputs as-is, while every other runner gets a transparent
    ``to_networkx`` conversion — correct everywhere, fast where it counts.
    """

    name: str
    family: str
    kind: str
    summary: str
    color_bound: str
    rounds_bound: str
    runner: Callable[..., AlgorithmRun] = field(repr=False)
    requires: Tuple[str, ...] = ()
    params: Tuple[str, ...] = ()
    distributed: bool = True
    invariants: Tuple[str, ...] = ()
    compact_ok: bool = False


_REGISTRY: Dict[str, AlgorithmSpec] = {}
_LOADED = False

#: Modules whose import populates the registry (self-registration blocks at
#: the bottom of each algorithm module).
_ALGORITHM_MODULES = (
    "repro.core",
    "repro.baselines",
    "repro.substrates",
)


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec``; duplicate names are an error (re-imports of the
    same module are idempotent because the previous spec is identical)."""
    if spec.family not in FAMILIES:
        raise InvalidParameterError(
            f"algorithm {spec.name!r}: unknown family {spec.family!r}"
        )
    if spec.kind not in KINDS:
        raise InvalidParameterError(
            f"algorithm {spec.name!r}: unknown kind {spec.kind!r}"
        )
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.runner is not spec.runner:
        raise InvalidParameterError(f"algorithm {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_loaded() -> None:
    # repro-check: ok fork-global-write — idempotent lazy-load latch; re-running
    # the imports after a fork reproduces the identical registry
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    for module in _ALGORITHM_MODULES:
        importlib.import_module(module)


def get(name: str) -> AlgorithmSpec:
    """Resolve ``name`` to its spec, loading the algorithm packages first."""
    _ensure_loaded()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )
    return spec


def specs(
    family: Optional[str] = None, kind: Optional[str] = None
) -> List[AlgorithmSpec]:
    """All registered specs, optionally filtered, in registration order."""
    _ensure_loaded()
    return [
        spec
        for spec in _REGISTRY.values()
        if (family is None or spec.family == family)
        and (kind is None or spec.kind == kind)
    ]


def names(family: Optional[str] = None, kind: Optional[str] = None) -> List[str]:
    """Names of registered algorithms, optionally filtered."""
    return [spec.name for spec in specs(family=family, kind=kind)]


def run(
    name: str,
    graph,
    engine: Optional[str] = None,
    **params: Any,
) -> AlgorithmRun:
    """Execute algorithm ``name`` on ``graph`` under ``engine`` (current
    engine when ``None``) and return the normalized result."""
    spec = get(name)
    unknown = set(params) - set(spec.params)
    if unknown:
        raise InvalidParameterError(
            f"algorithm {name!r} does not accept parameters {sorted(unknown)}; "
            f"accepted: {sorted(spec.params)}"
        )
    from repro import obs
    from repro.engine import use_engine
    from repro.graphcore import CompactGraph

    compact_fallback = False
    if isinstance(graph, CompactGraph) and not spec.compact_ok:
        # Runners that need the full networkx surface get a transparent
        # conversion; compact-capable runners skip it (the whole point of
        # the CSR data layer at scale). The conversion is disclosed — a
        # warning at call time, a flag in the result — so campaigns over
        # compact workloads can't silently pay the slow path (the same
        # contract as the engine layer's ``effective_engine``).
        import warnings

        from repro.errors import PerformanceWarning

        obs.incr("registry.compact_fallback", algorithm=name)
        obs.incr("warnings.performance")
        warnings.warn(
            f"algorithm {name!r} is not compact-capable: converting the "
            "CompactGraph input to networkx for this run (slow path; "
            "result.extra['compact_fallback'] records it)",
            PerformanceWarning,
            stacklevel=2,
        )
        graph = graph.to_networkx()
        compact_fallback = True
    with use_engine(engine), obs.span("registry.run", algorithm=name):
        result = spec.runner(graph, **params)
    if result.name != name or result.kind != spec.kind:
        raise InvalidParameterError(
            f"runner for {name!r} returned mislabeled run "
            f"({result.name!r}, {result.kind!r})"
        )
    if compact_fallback:
        result.extra["compact_fallback"] = True
    return result
