"""Tests for the prior-art baselines: weak (Delta^(1+eps)) and randomized."""

import networkx as nx
import pytest

from repro.analysis import verify_edge_coloring, verify_vertex_coloring
from repro.errors import InvalidParameterError
from repro.graphs import erdos_renyi, max_degree, random_regular
from repro.baselines import (
    randomized_edge_coloring,
    weak_edge_coloring,
    weak_vertex_coloring,
)


class TestWeakVertexColoring:
    def test_proper_on_menagerie(self, any_graph):
        result = weak_vertex_coloring(any_graph)
        if any_graph.number_of_nodes():
            verify_vertex_coloring(any_graph, result.coloring)

    def test_color_exponent_regime(self):
        # Delta^(1+eps) with small eps: more colors than Delta+1, far fewer
        # than Delta^2.
        g = random_regular(60, 20, seed=1)
        result = weak_vertex_coloring(g)
        assert result.colors_used >= 21
        assert result.colors_used <= 20**2
        assert 0.0 <= result.color_exponent < 1.0

    def test_faster_than_full_oracle(self):
        # the selling point of [6,7]: few rounds
        from repro.local import RoundLedger
        from repro.substrates import ColoringOracle

        g = random_regular(64, 16, seed=2)
        weak = weak_vertex_coloring(g)
        oracle_ledger = RoundLedger()
        ColoringOracle().vertex_coloring(g, ledger=oracle_ledger)
        assert weak.rounds_actual < oracle_ledger.total_actual

    def test_exponent_validation(self):
        with pytest.raises(InvalidParameterError):
            weak_vertex_coloring(nx.path_graph(3), exponent=0.3)
        with pytest.raises(InvalidParameterError):
            weak_vertex_coloring(nx.path_graph(3), exponent=1.0)
        with pytest.raises(InvalidParameterError):
            weak_vertex_coloring(nx.path_graph(3), threshold=0)

    def test_exponent_tradeoff(self):
        g = random_regular(60, 24, seed=3)
        low = weak_vertex_coloring(g, exponent=0.55)
        high = weak_vertex_coloring(g, exponent=0.9)
        verify_vertex_coloring(g, low.coloring)
        verify_vertex_coloring(g, high.coloring)

    def test_empty(self):
        assert weak_vertex_coloring(nx.Graph()).coloring == {}


class TestWeakEdgeColoring:
    def test_proper(self):
        g = random_regular(32, 8, seed=4)
        result = weak_edge_coloring(g)
        verify_edge_coloring(g, result.coloring)

    def test_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        assert weak_edge_coloring(g).coloring == {}


class TestRandomizedEdgeColoring:
    def test_proper_on_menagerie(self, nonempty_graph):
        result = randomized_edge_coloring(nonempty_graph, seed=1)
        verify_edge_coloring(nonempty_graph, result.coloring, palette=result.palette)

    def test_palette_bound(self):
        g = random_regular(40, 10, seed=5)
        result = randomized_edge_coloring(g, palette_factor=2.0, seed=2)
        assert result.colors_used <= 2 * 10

    def test_logarithmic_rounds(self):
        g = erdos_renyi(150, 0.08, seed=6)
        result = randomized_edge_coloring(g, seed=3)
        verify_edge_coloring(g, result.coloring)
        assert result.rounds <= 60  # O(log m) whp; generous cap

    def test_tight_palette_terminates_or_stalls_detectably(self):
        # below 2*Delta-1 the simple scheme may stall (the gap the nibble
        # method closes); it must either finish properly or raise, never
        # hang.
        from repro.errors import RoundLimitExceeded

        g = random_regular(48, 12, seed=7)
        try:
            result = randomized_edge_coloring(
                g, palette_factor=1.2, seed=4, max_rounds=300
            )
        except RoundLimitExceeded:
            return
        verify_edge_coloring(g, result.coloring, palette=result.palette)

    def test_two_delta_palette_always_terminates(self):
        for seed in range(5):
            g = random_regular(48, 12, seed=seed)
            result = randomized_edge_coloring(g, palette_factor=2.0, seed=seed)
            verify_edge_coloring(g, result.coloring, palette=result.palette)
            assert result.rounds <= 100

    def test_seed_reproducibility(self):
        g = erdos_renyi(30, 0.2, seed=8)
        a = randomized_edge_coloring(g, seed=9)
        b = randomized_edge_coloring(g, seed=9)
        assert a.coloring == b.coloring
        assert a.rounds == b.rounds

    def test_factor_validation(self):
        with pytest.raises(InvalidParameterError):
            randomized_edge_coloring(nx.path_graph(3), palette_factor=1.0)
