"""Tests for edge-list and coloring serialization."""

import networkx as nx
import pytest

from repro import io as repro_io
from repro.errors import InvalidParameterError
from repro.graphs import erdos_renyi


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(30, 0.2, seed=1)
        path = tmp_path / "g.edges"
        repro_io.write_edge_list(g, path)
        back = repro_io.read_edge_list(path)
        assert set(back.nodes()) == set(g.nodes())
        assert {tuple(sorted(e)) for e in back.edges()} == {
            tuple(sorted(e)) for e in g.edges()
        }

    def test_isolated_vertices_preserved(self, tmp_path):
        g = nx.Graph([(0, 1)])
        g.add_node(7)
        path = tmp_path / "g.edges"
        repro_io.write_edge_list(g, path)
        back = repro_io.read_edge_list(path)
        assert 7 in back.nodes()
        assert back.degree(7) == 0

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# header\n\n1 2  # inline\n2 3\n")
        g = repro_io.read_edge_list(path)
        assert sorted(g.edges()) == [(1, 2), (2, 3)]

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("3 3\n")
        with pytest.raises(InvalidParameterError):
            repro_io.read_edge_list(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("1 2 3\n")
        with pytest.raises(InvalidParameterError):
            repro_io.read_edge_list(path)


class TestColorings:
    def test_vertex_roundtrip(self, tmp_path):
        coloring = {0: 2, 1: 0, 5: 1}
        path = tmp_path / "c.json"
        repro_io.save_vertex_coloring(coloring, path)
        assert repro_io.load_vertex_coloring(path) == coloring

    def test_edge_roundtrip(self, tmp_path):
        coloring = {(0, 1): 3, (1, 2): 0}
        path = tmp_path / "c.json"
        repro_io.save_edge_coloring(coloring, path)
        assert repro_io.load_edge_coloring(path) == coloring

    def test_edge_keys_canonicalized_on_load(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"type": "edge", "colors": [[5, 2, 1]]}')
        assert repro_io.load_edge_coloring(path) == {(2, 5): 1}

    def test_type_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        repro_io.save_vertex_coloring({0: 1}, path)
        with pytest.raises(InvalidParameterError):
            repro_io.load_edge_coloring(path)


class TestColoredDot:
    def test_edge_colored_dot(self, tmp_path):
        import networkx as nx

        from repro.io import write_colored_dot

        g = nx.cycle_graph(4)
        coloring = {(0, 1): 0, (1, 2): 1, (2, 3): 0, (0, 3): 1}
        path = tmp_path / "g.dot"
        write_colored_dot(g, path, edge_coloring=coloring)
        text = path.read_text()
        assert text.startswith("graph")
        assert text.count("--") == 4
        assert "color=red" in text and "color=blue" in text

    def test_vertex_colored_dot(self, tmp_path):
        import networkx as nx

        from repro.io import write_colored_dot

        g = nx.path_graph(3)
        path = tmp_path / "g.dot"
        write_colored_dot(g, path, vertex_coloring={0: 0, 1: 1, 2: 0})
        text = path.read_text()
        assert "fillcolor=red" in text
        assert "fillcolor=blue" in text

    def test_palette_recycles_beyond_twelve(self, tmp_path):
        import networkx as nx

        from repro.io import write_colored_dot

        g = nx.star_graph(14)
        coloring = {tuple(sorted((0, i))): i - 1 for i in range(1, 15)}
        path = tmp_path / "g.dot"
        write_colored_dot(g, path, edge_coloring=coloring)
        text = path.read_text()
        assert 'label="13"' in text  # numeric labels disambiguate recycling

    def test_plain_dot_without_colorings(self, tmp_path):
        import networkx as nx

        from repro.io import write_colored_dot

        g = nx.path_graph(2)
        path = tmp_path / "g.dot"
        write_colored_dot(g, path)
        assert "[" not in path.read_text()
