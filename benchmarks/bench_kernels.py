#!/usr/bin/env python3
"""Benchmark: whole-round CSR kernels against the per-node vector path.

Three gates, written to ``BENCH_kernels.json`` (nonzero exit if any
fails):

* **million-node-linial** — wall time of the full 1M-node ``xl-grid``
  linial cell through ``registry.run(..., engine="vector")`` on the
  CompactGraph input, i.e. the kernel path end to end (graph build
  excluded, verification excluded — the cell the ISSUE's ~103 s PR 5
  baseline measured). Gate: single-digit seconds
  (``--max-million-s``, default 10).
* **kernel-speedup** — the same linial run on one instance
  (``--speedup-grid`` side, default 250, so 62.5k nodes) with the
  kernel registry emptied (per-node event-driven path) vs. intact
  (kernel path). Same engine, same graph, same extras — the measured
  ratio isolates exactly what this PR added. Gate: >=
  ``--require-speedup`` (default 10).
* **compact-ok-count** — ``compact_ok`` algorithms in the registry.
  Gate: >= ``--require-compact-ok`` (default 12) of the catalogue,
  with the parity suite (tests/engine/test_compact_parity.py) as the
  bit-for-bit correctness side of the same claim.

The numba fast path is reported (available/enabled), never required:
the container has no numba, and kernels degrade to pure numpy with
identical results (tools/ci.sh gates the byte-parity).

Run:  PYTHONPATH=src python benchmarks/bench_kernels.py
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro import kernels, registry
from repro.graphcore import build_grid
from repro.local import DEFAULT_MAX_ROUNDS


def _timed(fn):
    gc.collect()
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def bench_million_node_linial() -> dict:
    graph = build_grid(1000, 1000)
    wall_s, run = _timed(lambda: registry.run("linial", graph, engine="vector"))
    return {
        "workload": "xl-grid",
        "n": graph.n,
        "m": graph.m,
        "wall_s": wall_s,
        "colors_used": run.colors_used,
        "rounds_actual": run.rounds_actual,
        "pr5_baseline_s": 103.0,  # BENCH_graphcore.json era, per-node path
        "speedup_vs_pr5_baseline": 103.0 / wall_s if wall_s > 0 else float("inf"),
    }


def bench_kernel_speedup(side: int) -> dict:
    from repro.engine import get_engine
    from repro.kernels.segments import repr_rank_order
    from repro.substrates.linial import LinialAlgorithm

    graph = build_grid(side, side)
    ordered = repr_rank_order(graph.n).tolist()
    extras = {
        "initial_coloring": {v: i for i, v in enumerate(ordered)},
        "m0": graph.n,
    }
    engine = get_engine("vector")
    algorithm = LinialAlgorithm()

    def kernel_path():
        return engine.run(graph, algorithm, extras=dict(extras))

    def per_node_path():
        # Empty the kernel registry for the duration: the engine finds no
        # kernel and falls back to its event-driven per-node scheduler —
        # exactly the PR 5 execution of the same cell.
        saved = dict(kernels._KERNELS)
        modules = dict(kernels._KERNEL_MODULES)
        kernels._KERNELS.clear()
        kernels._KERNEL_MODULES.clear()
        try:
            return engine.run(graph, algorithm, extras=dict(extras))
        finally:
            kernels._KERNELS.update(saved)
            kernels._KERNEL_MODULES.update(modules)

    kernel_s, kernel_run = _timed(kernel_path)
    per_node_s, per_node_run = _timed(per_node_path)
    assert per_node_run.outputs == kernel_run.outputs, "speedup probe diverged"
    assert per_node_run.round_messages == kernel_run.round_messages
    return {
        "workload": f"grid {side}x{side}",
        "n": graph.n,
        "per_node_s": per_node_s,
        "kernel_s": kernel_s,
        "speedup": per_node_s / kernel_s if kernel_s > 0 else float("inf"),
        "rounds": kernel_run.rounds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-million-s", type=float, default=10.0)
    parser.add_argument("--require-speedup", type=float, default=10.0)
    parser.add_argument("--require-compact-ok", type=int, default=12)
    parser.add_argument("--speedup-grid", type=int, default=250)
    parser.add_argument("--out", default="BENCH_kernels.json")
    args = parser.parse_args()

    million = bench_million_node_linial()
    speedup = bench_kernel_speedup(args.speedup_grid)
    compact_ok = sorted(
        name for name in registry.names() if registry.get(name).compact_ok
    )

    gates = {
        "million_node_linial_wall_s": {
            "required_max": args.max_million_s,
            "measured": million["wall_s"],
            "passed": million["wall_s"] <= args.max_million_s,
        },
        "kernel_vs_per_node_speedup": {
            "required": args.require_speedup,
            "measured": speedup["speedup"],
            "passed": speedup["speedup"] >= args.require_speedup,
        },
        "compact_ok_count": {
            "required": args.require_compact_ok,
            "measured": len(compact_ok),
            "passed": len(compact_ok) >= args.require_compact_ok,
        },
    }
    payload = {
        "benchmark": "kernels",
        "million_node_linial": million,
        "kernel_speedup": speedup,
        "compact_ok": compact_ok,
        "registry_size": len(registry.names()),
        "kernels": kernels.kernel_names(),
        "numba_available": kernels.numba_available(),
        "numba_enabled": kernels.numba_enabled(),
        "max_rounds": DEFAULT_MAX_ROUNDS,
        "gates": gates,
        "passed": all(g["passed"] for g in gates.values()),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    print(
        f"1M-node xl-grid linial (kernel path): {million['wall_s']:.2f}s "
        f"(gate <= {args.max_million_s:.0f}s; ~{million['speedup_vs_pr5_baseline']:.0f}x "
        f"the PR 5 per-node baseline of ~103s)"
    )
    print(
        f"kernel vs per-node on {speedup['workload']}: "
        f"{speedup['per_node_s']:.2f}s -> {speedup['kernel_s']:.3f}s "
        f"= {speedup['speedup']:.1f}x (gate {args.require_speedup:.0f}x)"
    )
    print(
        f"compact_ok: {len(compact_ok)}/{len(registry.names())} "
        f"(gate >= {args.require_compact_ok})"
    )
    print(f"wrote {args.out}")
    if not payload["passed"]:
        failing = [k for k, g in gates.items() if not g["passed"]]
        print(f"FAILED gates: {', '.join(failing)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
