"""Streaming CSR builders: structural guarantees and seed determinism."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphcore import (
    CompactGraph,
    build_forest_stack,
    build_grid,
    build_power_law,
    build_regular,
)
from repro.graphs import planar_grid


def revalidate(graph: CompactGraph) -> CompactGraph:
    """Run the full CSR invariant check on a builder's output."""
    return CompactGraph(graph.indptr, graph.indices, labels=graph.labels)


class TestRegular:
    def test_even_degree_exact(self):
        g = revalidate(build_regular(2000, 8, seed=1))
        assert g.n == 2000
        assert g.max_degree <= 8
        # collisions are rare at this density: almost every node exact
        assert np.mean(g.degrees == 8) > 0.98

    def test_odd_degree_with_matching(self):
        g = revalidate(build_regular(500, 5, seed=2))
        assert g.max_degree <= 5
        assert np.mean(g.degrees == 5) > 0.95

    def test_odd_degree_odd_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_regular(501, 5)

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_regular(4, 4)

    def test_seed_determinism(self):
        assert build_regular(300, 6, seed=9).digest() == build_regular(300, 6, seed=9).digest()
        assert build_regular(300, 6, seed=9).digest() != build_regular(300, 6, seed=10).digest()


class TestPowerLaw:
    def test_heavy_tail(self):
        g = revalidate(build_power_law(3000, 3, seed=4))
        assert g.n == 3000
        # every late node attaches to `attach` distinct targets
        assert int(g.degrees.min()) >= 3
        # hubs: Delta far above the mean degree (~2*attach)
        assert g.max_degree > 10 * (2 * g.m / g.n) / 2

    def test_edge_count(self):
        g = build_power_law(1000, 2, seed=0)
        assert g.m == 2 + 2 * (1000 - 3)  # seed star + attach per new node

    def test_seed_determinism(self):
        assert build_power_law(400, 3, seed=7).digest() == build_power_law(400, 3, seed=7).digest()
        assert build_power_law(400, 3, seed=7).digest() != build_power_law(400, 3, seed=8).digest()

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_power_law(3, 3)


class TestForestStack:
    def test_arboricity_shape(self):
        g = revalidate(build_forest_stack(20, 30, a=2, seed=1))
        assert g.n == 20 * 31
        # each layer adds <= n - n_centers edges (a star forest is a forest)
        assert g.m <= 2 * (g.n - 20)
        # centers collect ~leaves_per_center edges per layer: Delta >> a
        assert g.max_degree > 15

    def test_seed_determinism(self):
        a = build_forest_stack(8, 10, a=3, seed=5)
        b = build_forest_stack(8, 10, a=3, seed=5)
        assert a.digest() == b.digest()

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_forest_stack(0, 5, a=1)


class TestGrid:
    def test_matches_nx_generator_exactly(self):
        # the one builder with a deterministic nx counterpart in the same
        # node order: identical graphs, not merely the same family
        ours = build_grid(7, 9)
        theirs = CompactGraph.from_networkx(planar_grid(7, 9))
        assert ours.digest() == theirs.digest()

    def test_degenerate_sizes(self):
        assert build_grid(1, 1).m == 0
        line = build_grid(1, 5)
        assert line.m == 4 and line.max_degree == 2

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_grid(0, 3)


class TestXlWorkloadWiring:
    def test_xl_specs_resolve_to_compact(self):
        from repro import workloads

        for spec in workloads.specs(family="xl"):
            assert spec.compact
            small = {
                k: max(1, v // 250) if isinstance(v, int) else v
                for k, v in spec.defaults.items()
            }
            graph = workloads.build(spec.name, small, seed=0)
            assert isinstance(graph, CompactGraph)
            assert graph.n > 0

    def test_xl_defaults_are_million_node(self):
        from repro import workloads

        for spec in workloads.specs(family="xl"):
            defaults = dict(spec.defaults)
            if "n" in defaults:
                n = defaults["n"]
            elif "rows" in defaults:
                n = defaults["rows"] * defaults["cols"]
            else:
                n = defaults["n_centers"] * (1 + defaults["leaves_per_center"])
            assert n >= 1_000_000
