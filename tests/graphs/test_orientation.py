"""Tests for acyclic orientations."""

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.graphs import Orientation, orient_acyclic_by_order
from repro.types import edge_key


class TestOrientation:
    def test_orient_by_chooser(self):
        g = nx.path_graph(4)
        o = Orientation.orient_by(g, lambda u, v: max(u, v))
        assert o.head_of(0, 1) == 1
        assert o.tail_of(0, 1) == 0
        assert o.is_acyclic()

    def test_out_in_edges(self):
        g = nx.star_graph(3)
        o = Orientation.orient_by(g, lambda u, v: max(u, v))
        assert len(o.out_edges(0)) == 3
        assert len(o.in_edges(0)) == 0
        assert o.out_degree(0) == 3
        assert o.max_out_degree() == 3

    def test_cycle_orientation_detected(self):
        g = nx.cycle_graph(3)
        # orient 0->1, 1->2, 2->0: a directed cycle
        head = {
            edge_key(0, 1): 1,
            edge_key(1, 2): 2,
            edge_key(0, 2): 0,
        }
        o = Orientation(graph=g, head=head)
        assert not o.is_acyclic()

    def test_invalid_head_rejected(self):
        g = nx.path_graph(2)
        with pytest.raises(InvalidParameterError):
            Orientation(graph=g, head={edge_key(0, 1): 9})

    def test_as_digraph(self):
        g = nx.path_graph(3)
        o = orient_acyclic_by_order(g, [0, 1, 2])
        dg = o.as_digraph()
        assert set(dg.edges()) == {(0, 1), (1, 2)}


class TestOrientByOrder:
    def test_acyclic_with_forward_degree(self, nonempty_graph):
        order = sorted(nonempty_graph.nodes(), key=repr)
        o = orient_acyclic_by_order(nonempty_graph, order)
        assert o.is_acyclic()
        position = {v: i for i, v in enumerate(order)}
        for v in nonempty_graph.nodes():
            expected = sum(
                1 for u in nonempty_graph.neighbors(v) if position[u] > position[v]
            )
            assert o.out_degree(v) == expected

    def test_missing_vertices_rejected(self):
        g = nx.path_graph(3)
        with pytest.raises(InvalidParameterError):
            orient_acyclic_by_order(g, [0, 1])


class TestRestrict:
    def test_restrict_keeps_directions(self):
        g = nx.cycle_graph(5)
        o = orient_acyclic_by_order(g, list(range(5)))
        sub = nx.Graph([(0, 1), (1, 2)])
        ro = o.restrict(sub)
        assert ro.head_of(0, 1) == o.head_of(0, 1)
        assert ro.is_acyclic()
        assert ro.max_out_degree() <= o.max_out_degree()

    def test_restrict_unknown_edge_rejected(self):
        g = nx.path_graph(3)
        o = orient_acyclic_by_order(g, [0, 1, 2])
        stranger = nx.Graph([(0, 2)])
        with pytest.raises(InvalidParameterError):
            o.restrict(stranger)
