"""Schema v1 -> v2 migration (PR 4 satellite): opening a PR-3-era store
(no verdict/violation columns) upgrades it in place, preserves every
pre-existing column byte-identically, and leaves old rows *unverified*."""

import json
import sqlite3

import pytest

from repro.errors import InvalidParameterError
from repro.store import ExperimentStore, stable_row

#: The PR-3 (schema v1) DDL, verbatim — handcrafting it pins the
#: migration test to the real historical layout, not to whatever the
#: current _SCHEMA happens to be.
_V1_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_key         TEXT PRIMARY KEY,
    algorithm       TEXT NOT NULL,
    family          TEXT,
    workload        TEXT NOT NULL,
    workload_params TEXT NOT NULL DEFAULT '{}',
    seed            INTEGER NOT NULL DEFAULT 0,
    algo_params     TEXT NOT NULL DEFAULT '{}',
    engine          TEXT NOT NULL,
    code_version    TEXT NOT NULL,
    n               INTEGER,
    m               INTEGER,
    kind            TEXT,
    colors_used     INTEGER,
    rounds_actual   REAL,
    rounds_modeled  REAL,
    messages        INTEGER,
    verified        INTEGER,
    error           TEXT,
    wall_ms         REAL,
    extra           TEXT,
    created_at      REAL NOT NULL
);
"""

_V1_COLUMNS = (
    "run_key", "algorithm", "family", "workload", "workload_params", "seed",
    "algo_params", "engine", "code_version", "n", "m", "kind", "colors_used",
    "rounds_actual", "rounds_modeled", "messages", "verified", "error",
    "wall_ms", "extra", "created_at",
)


def _v1_row(i: int):
    return (
        f"key-{i:02d}", "star4", "core", "random-regular",
        json.dumps({"d": 8, "n": 48}, sort_keys=True), i, "{}",
        "reference", "1.0.0", 48, 192, "edge-coloring", 20 + i, 11.0, 7.0,
        None, 1, None, 12.5, "{}", 1700000000.0 + i,
    )


def make_v1_store(path, rows=3):
    conn = sqlite3.connect(path)
    conn.executescript(_V1_SCHEMA)
    conn.execute("INSERT INTO meta (key, value) VALUES ('schema_version', '1')")
    conn.executemany(
        f"INSERT INTO runs ({', '.join(_V1_COLUMNS)}) "
        f"VALUES ({', '.join('?' for _ in _V1_COLUMNS)})",
        [_v1_row(i) for i in range(rows)],
    )
    conn.commit()
    conn.close()


class TestV1Migration:
    def test_open_upgrades_schema_version(self, tmp_path):
        path = tmp_path / "v1.db"
        make_v1_store(path)
        with ExperimentStore(path) as store:
            assert len(store) == 3
        conn = sqlite3.connect(path)
        version = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()[0]
        assert version == "3"
        columns = {r[1] for r in conn.execute("PRAGMA table_info(runs)")}
        assert {"verdict", "violation", "metrics"} <= columns
        conn.close()

    def test_pre_existing_columns_byte_identical(self, tmp_path):
        """The migration must not disturb any v1 column: the v1 projection
        of the upgraded store's deterministic JSON equals the raw v1 data."""
        path = tmp_path / "v1.db"
        make_v1_store(path)
        # Raw v1 reads, before any ExperimentStore touches the file.
        conn = sqlite3.connect(path)
        conn.row_factory = sqlite3.Row
        raw = [dict(r) for r in conn.execute("SELECT * FROM runs ORDER BY run_key")]
        conn.close()

        with ExperimentStore(path) as store:
            rows = store.query()
        v1_stable = [c for c in _V1_COLUMNS if c not in ("wall_ms", "created_at")]

        def project(row):
            out = {}
            for c in v1_stable:
                value = row[c]
                if c in ("workload_params", "algo_params", "extra") and isinstance(
                    value, str
                ):
                    value = json.loads(value) if value else {}
                if c == "verified" and value is not None:
                    value = bool(value)
                out[c] = value
            return out

        before = json.dumps([project(r) for r in raw], sort_keys=True)
        after = json.dumps([project(r) for r in rows], sort_keys=True)
        assert before == after

    def test_migrated_rows_are_unverified(self, tmp_path):
        path = tmp_path / "v1.db"
        make_v1_store(path)
        with ExperimentStore(path) as store:
            unverified = store.query(unverified=True)
            assert len(unverified) == 3
            assert all(r["verdict"] is None for r in unverified)
            assert all(r["violation"] is None for r in unverified)
            # stable_row exposes the new columns (as NULL) without
            # touching the pre-existing values.
            projected = stable_row(unverified[0])
            assert projected["verdict"] is None
            assert projected["colors_used"] == 20

    def test_migration_is_idempotent(self, tmp_path):
        path = tmp_path / "v1.db"
        make_v1_store(path)
        for _ in range(3):
            with ExperimentStore(path) as store:
                assert len(store) == 3

    def test_new_rows_coexist_with_migrated(self, tmp_path):
        path = tmp_path / "v1.db"
        make_v1_store(path)
        with ExperimentStore(path) as store:
            store.put(
                {
                    "run_key": "new-row",
                    "algorithm": "greedy",
                    "workload": "random-regular",
                    "engine": "reference",
                    "code_version": "1.0.0",
                    "verdict": "ok",
                }
            )
            assert len(store.query(unverified=True)) == 3
            assert store.get("new-row")["verdict"] == "ok"

    def test_future_versions_still_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        make_v1_store(path)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(InvalidParameterError, match="schema version 99"):
            ExperimentStore(path)
