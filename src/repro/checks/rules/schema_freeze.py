"""Schema-freeze rule: frozen surfaces change only with a version bump.

See :mod:`repro.checks.baseline` for what is frozen and why. The rule
compares the AST-extracted facts of the scanned tree against the
checked-in ``schema_baseline.json``:

* shape changed, version unchanged — the real bug this rule exists for:
  a column added to ``STABLE_COLUMNS`` (or a trace-event field) would
  silently break byte-comparison against every existing store/trace.
  Fix: bump the version constant, handle migration, then refresh the
  baseline.
* version changed (with or without a shape change) — a deliberate bump;
  the build still fails until ``repro check --update-baseline`` commits
  the new fingerprint, so the bump is visible in the diff as two
  coordinated edits (constant + baseline), never one stray constant.
* baseline missing while frozen surfaces exist — fails closed.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.checks.base import CheckRule, ProjectChecker, register_checker
from repro.checks.baseline import (
    BASELINE_NAME,
    extract_schema_facts,
    load_baseline,
)


@register_checker
class SchemaFreeze(ProjectChecker):
    rule = CheckRule(
        name="schema-freeze",
        family="schema",
        summary="STABLE_COLUMNS / trace-event fields / schema version "
        "constants must match the checked-in baseline; changes require a "
        "version bump plus `repro check --update-baseline`",
    )

    def check(self, project) -> Iterator[Tuple[str, int, str]]:
        facts = extract_schema_facts(project)
        if not facts:
            return  # mini-trees without any frozen surface
        baseline = load_baseline(project.root)
        if baseline is None:
            for surface, entry in sorted(facts.items()):
                yield entry["path"], entry["version_line"], (
                    f"frozen surface {surface!r} exists but there is no "
                    f"checks/{BASELINE_NAME} — run "
                    "`repro check --update-baseline` and commit it"
                )
            return
        for surface, entry in sorted(facts.items()):
            frozen = baseline.get(surface)
            if not isinstance(frozen, dict):
                yield entry["path"], entry["version_line"], (
                    f"frozen surface {surface!r} is missing from "
                    f"checks/{BASELINE_NAME} — refresh the baseline with "
                    "`repro check --update-baseline`"
                )
                continue
            version_same = entry["version"] == frozen.get("version")
            shape_same = entry["fingerprint"] == frozen.get("fingerprint")
            if version_same and shape_same:
                continue
            if version_same and not shape_same:
                shape_line = min(
                    entry["shape_lines"].values(), default=entry["version_line"]
                )
                yield entry["path"], shape_line, (
                    f"{surface}: frozen shape changed without a version "
                    f"bump (fingerprint {entry['fingerprint'][:12]} != "
                    f"baseline {str(frozen.get('fingerprint'))[:12]}) — "
                    "existing stores/traces would silently stop "
                    "byte-comparing; bump the version constant, migrate, "
                    "then `repro check --update-baseline`"
                )
            else:
                yield entry["path"], entry["version_line"], (
                    f"{surface}: version is {entry['version']} but the "
                    f"baseline froze {frozen.get('version')} — if the bump "
                    "is deliberate, refresh with "
                    "`repro check --update-baseline` and commit both edits "
                    "together"
                )
