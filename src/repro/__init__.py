"""repro — reproduction of Barenboim–Elkin–Maimon (PODC 2017):
deterministic distributed (Delta + o(Delta))-edge-coloring and
vertex-coloring of graphs with bounded diversity.

Public API highlights:

* ``repro.local`` — synchronous LOCAL-model simulator and round ledger.
* ``repro.graphs`` — generators, clique covers, line graphs, hypergraphs.
* ``repro.graphcore`` — the compact CSR graph type, the ``.csrg`` on-disk
  graph store (memory-mapped opens), and streaming million-node builders.
* ``repro.substrates`` — Linial coloring, reductions, the [17] oracle,
  H-partitions.
* ``repro.core`` — the paper's contribution: connectors, CD-Coloring
  (Algorithm 1), star-partition edge coloring (Section 4), and the
  bounded-arboricity (Delta + o(Delta))-edge-colorings (Section 5).
* ``repro.baselines`` — Vizing/Misra–Gries, greedy, degree-splitting and the
  analytic [7]+[17] comparison rows.
* ``repro.analysis`` — verifiers, table/figure harnesses.
"""

from repro.errors import (
    CliqueCoverError,
    ColoringError,
    InvalidParameterError,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)
from repro.types import (
    Color,
    Edge,
    EdgeColoring,
    NodeId,
    VertexColoring,
    edge_key,
    num_colors,
)

__version__ = "1.0.0"

# Lazy top-level conveniences (PEP 562): `repro.four_delta_edge_coloring(g)`
# etc. without paying the full import cost for `import repro`.
_LAZY_EXPORTS = {
    "four_delta_edge_coloring": "repro.core",
    "star_partition_edge_coloring": "repro.core",
    "cd_coloring": "repro.core",
    "cd_edge_coloring": "repro.core",
    "cd_hyperedge_coloring": "repro.core",
    "edge_color_bounded_arboricity": "repro.core",
    "edge_color_delta_plus_o_delta": "repro.core",
    "verify_edge_coloring": "repro.analysis",
    "verify_vertex_coloring": "repro.analysis",
    "ColoringOracle": "repro.substrates",
    "line_graph_with_cover": "repro.graphs",
    "CompactGraph": "repro.graphcore",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(list(globals()) + list(_LAZY_EXPORTS))


__all__ = [
    "CliqueCoverError",
    "ColoringError",
    "InvalidParameterError",
    "ReproError",
    "RoundLimitExceeded",
    "SimulationError",
    "Color",
    "Edge",
    "EdgeColoring",
    "NodeId",
    "VertexColoring",
    "edge_key",
    "num_colors",
    "__version__",
]
