"""The paper's connector constructions (Section 2, 4, 5; Figures 1-3).

A *connector* re-wires a graph so that the structure that makes coloring hard
(large cliques, large stars, high degree) is broken into bounded-size pieces:

* **Clique connector** (Section 2, Figure 1): every identified maximal clique
  partitions its vertices into groups of size ``t``; only within-group edges
  are kept. Maximum degree drops to ``D * (t - 1)`` (Lemma 2.1).
* **Edge-connector** (Section 4, Figure 2): every vertex splits into
  ``ceil(deg / t)`` virtual vertices, each owning at most ``t`` incident
  edges. The connector's maximum degree is ``t``; a proper edge coloring of
  the connector partitions the original edges into classes whose stars have
  size at most ``ceil(Delta / t)``.
* **Orientation connector** (Section 5, Figure 3): given an acyclic
  orientation, incoming and outgoing edges are grouped separately, so the
  connector simultaneously bounds degree (by the in-group size) and
  arboricity (by the out-group size, which caps the out-degree of the
  inherited — still acyclic — orientation). The **bipartite** variant
  (Theorem 5.4) puts in-virtuals and out-virtuals on separate sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import InvalidParameterError
from repro.graphs.cliques import CliqueCover
from repro.graphs.orientation import Orientation
from repro.types import Edge, EdgeColoring, NodeId, edge_key


# --------------------------------------------------------------------------
# Clique connector (Section 2)
# --------------------------------------------------------------------------


def build_clique_connector(graph: nx.Graph, cover: CliqueCover, t: int) -> nx.Graph:
    """The connector G' = (V, E') keeping only edges internal to one group of
    one identified clique (each clique split into groups of size <= t).

    Lemma 2.1: ``Delta(G') <= D * (t - 1)``.
    """
    if t < 2:
        raise InvalidParameterError("connector group size t must be >= 2")
    connector = nx.Graph()
    connector.add_nodes_from(graph.nodes())
    for idx in range(len(cover.cliques)):
        for group in cover.partition_clique(idx, t):
            for i, u in enumerate(group):
                for v in group[i + 1 :]:
                    connector.add_edge(u, v)
    return connector


# --------------------------------------------------------------------------
# Edge-connector (Section 4)
# --------------------------------------------------------------------------


@dataclass
class EdgeConnector:
    """The virtual graph of Section 4 plus the edge correspondence.

    ``graph`` has virtual vertices ``(v, i)`` (the i-th edge-group of original
    vertex ``v``, 1-based) and one edge per original edge; ``edge_map`` sends
    each original (canonical) edge to its connector (canonical) edge.
    """

    base: nx.Graph
    graph: nx.Graph
    edge_map: Dict[Edge, Edge]
    t: int

    def project_edge_coloring(self, connector_coloring: EdgeColoring) -> EdgeColoring:
        """Pull an edge coloring of the connector back to the base graph."""
        return {e: connector_coloring[ce] for e, ce in self.edge_map.items()}

    def classes(self, connector_coloring: EdgeColoring) -> Dict[int, List[Edge]]:
        """Group base edges by the connector color of their image."""
        groups: Dict[int, List[Edge]] = {}
        for e, ce in self.edge_map.items():
            groups.setdefault(connector_coloring[ce], []).append(e)
        return groups


def build_edge_connector(graph: nx.Graph, t: int) -> EdgeConnector:
    """Section 4's edge-connector: each vertex enumerates its incident edges
    ``1..deg`` and groups them into chunks of ``t``; the edge ``(u, v)`` with
    in-vertex labels ``l(u), l(v)`` becomes ``((u, ceil(l(u)/t)),
    (v, ceil(l(v)/t)))``. The connector's maximum degree is at most ``t``."""
    if t < 1:
        raise InvalidParameterError("edge-connector group size t must be >= 1")
    # Deterministic local enumeration: sort incident edges by neighbor repr.
    group_of: Dict[Tuple[NodeId, NodeId], int] = {}
    for v in graph.nodes():
        for label, u in enumerate(sorted(graph.neighbors(v), key=repr), start=1):
            group_of[(v, u)] = math.ceil(label / t)
    connector = nx.Graph()
    edge_map: Dict[Edge, Edge] = {}
    for u, v in graph.edges():
        cu = (u, group_of[(u, v)])
        cv = (v, group_of[(v, u)])
        connector.add_edge(cu, cv)
        edge_map[edge_key(u, v)] = edge_key(cu, cv)
    # Virtual vertices with no edges are irrelevant; original isolated
    # vertices do not appear — edge coloring does not involve them.
    return EdgeConnector(base=graph, graph=connector, edge_map=edge_map, t=t)


# --------------------------------------------------------------------------
# Orientation connectors (Section 5)
# --------------------------------------------------------------------------


@dataclass
class OrientationConnector:
    """A connector built from an acyclically oriented graph.

    ``graph`` contains virtual vertices; ``orientation`` orients its edges
    consistently with the base orientation (hence acyclically); ``edge_map``
    is the base-edge -> connector-edge correspondence. For the bipartite
    variant, ``side`` maps every virtual vertex to ``"in"`` or ``"out"``.
    """

    base: nx.Graph
    graph: nx.Graph
    orientation: Orientation
    edge_map: Dict[Edge, Edge]
    side: Optional[Dict[NodeId, str]] = None

    def project_edge_coloring(self, connector_coloring: EdgeColoring) -> EdgeColoring:
        return {e: connector_coloring[ce] for e, ce in self.edge_map.items()}

    def classes(self, connector_coloring: EdgeColoring) -> Dict[int, List[Edge]]:
        groups: Dict[int, List[Edge]] = {}
        for e, ce in self.edge_map.items():
            groups.setdefault(connector_coloring[ce], []).append(e)
        return groups


def _grouped(edges: List[Edge], group_size: int) -> Dict[Edge, int]:
    """Assign each edge its 1-based group index under a fixed chunking."""
    assignment = {}
    ordered = sorted(edges, key=repr)
    for pos, e in enumerate(ordered):
        assignment[e] = pos // group_size + 1
    return assignment


def build_orientation_connector(
    graph: nx.Graph,
    orientation: Orientation,
    in_group_size: int,
    out_group_size: int,
    bipartite: bool = False,
) -> OrientationConnector:
    """Figure 3's connector (Theorem 5.3) or its bipartite variant (5.4).

    Every vertex ``v`` groups its incoming edges into chunks of
    ``in_group_size`` and its outgoing edges into chunks of
    ``out_group_size``. In the shared variant both chunkings attach to the
    same virtual pool ``(v, i)``; in the bipartite variant incoming chunks
    attach to ``("in", v, i)`` and outgoing to ``("out", v, i)``, making the
    connector bipartite with side degrees ``in_group_size`` /
    ``out_group_size``.

    The connector inherits the (acyclic) orientation: a directed base edge
    ``u -> w`` becomes a directed connector edge from u's out-virtual to w's
    in-virtual.
    """
    if in_group_size < 1 or out_group_size < 1:
        raise InvalidParameterError("group sizes must be >= 1")

    in_assignment: Dict[Edge, Dict[NodeId, int]] = {}
    out_assignment: Dict[Edge, Dict[NodeId, int]] = {}
    for v in graph.nodes():
        for e, grp in _grouped(orientation.in_edges(v), in_group_size).items():
            in_assignment.setdefault(e, {})[v] = grp
        for e, grp in _grouped(orientation.out_edges(v), out_group_size).items():
            out_assignment.setdefault(e, {})[v] = grp

    connector = nx.Graph()
    edge_map: Dict[Edge, Edge] = {}
    head_map: Dict[Edge, NodeId] = {}
    side: Dict[NodeId, str] = {}
    for u, w in graph.edges():
        e = edge_key(u, w)
        head = orientation.head[e]
        tail = u if head == w else w
        out_grp = out_assignment[e][tail]
        in_grp = in_assignment[e][head]
        if bipartite:
            c_tail: NodeId = ("out", tail, out_grp)
            c_head: NodeId = ("in", head, in_grp)
            side[c_tail] = "out"
            side[c_head] = "in"
        else:
            c_tail = (tail, out_grp)
            c_head = (head, in_grp)
        connector.add_edge(c_tail, c_head)
        ce = edge_key(c_tail, c_head)
        edge_map[e] = ce
        head_map[ce] = c_head
    connector_orientation = Orientation(graph=connector, head=head_map)
    return OrientationConnector(
        base=graph,
        graph=connector,
        orientation=connector_orientation,
        edge_map=edge_map,
        side=side if bipartite else None,
    )
