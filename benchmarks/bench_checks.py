#!/usr/bin/env python3
"""Benchmark: the static-analysis pass is fast enough to gate every CI run.

``repro check`` sits in tools/ci.sh *before* pytest, so its cost is paid
on every push; a slow checker gets deleted from CI, and a deleted
checker enforces nothing. Two gates, written to ``BENCH_checks.json``
(nonzero exit if either fails):

* **full-scan-s** — median wall time of a complete scan of this
  repository (every rule, every file, discovery + parse + dispatch
  included). Gate: <= ``--max-scan-s`` (default 10, the ISSUE budget;
  measured ~1s, so the gate is a regression tripwire, not a target).
* **self-clean** — the scan must also come back with zero unwaived
  violations: a red repo makes the timing meaningless (CI would already
  be failing ahead of this bench).

Run:  PYTHONPATH=src python benchmarks/bench_checks.py
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.checks import run_checks


def bench_full_scan(repeats: int) -> dict:
    times = []
    report = None
    for _ in range(repeats):
        started = time.perf_counter()
        report = run_checks()
        times.append(time.perf_counter() - started)
    assert report is not None
    return {
        "repeats": repeats,
        "files": report.files,
        "rules": len(report.rules),
        "violations_fired": report.fired,
        "violations_waived": report.waived,
        "median_s": statistics.median(times),
        "min_s": min(times),
        "max_s": max(times),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-scan-s", type=float, default=10.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_checks.json")
    args = parser.parse_args()

    scan = bench_full_scan(args.repeats)

    gates = {
        "full_scan_s": {
            "required_max": args.max_scan_s,
            "measured": scan["median_s"],
            "passed": scan["median_s"] <= args.max_scan_s,
        },
        "self_clean": {
            "required": "zero unwaived violations on this repository",
            "measured": (
                f"{scan['violations_fired']} fired, "
                f"{scan['violations_waived']} waived"
            ),
            "passed": scan["violations_fired"] == 0,
        },
    }
    payload = {
        "benchmark": "checks",
        "full_scan": scan,
        "gates": gates,
        "passed": all(g["passed"] for g in gates.values()),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    print(
        f"full scan: {scan['files']} files, {scan['rules']} rules, "
        f"median {scan['median_s']:.3f}s over {scan['repeats']} runs "
        f"(gate <= {args.max_scan_s:.0f}s)"
    )
    print(
        f"self-lint: {scan['violations_fired']} fired, "
        f"{scan['violations_waived']} waived"
    )
    print(f"wrote {args.out}")
    if not payload["passed"]:
        failing = [k for k, g in gates.items() if not g["passed"]]
        print(f"FAILED gates: {', '.join(failing)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
