"""Ablation: the Section 3 choice of the connector group size t.

Sweeps t around the paper's optimum ``t* = S^(1/(x+1))`` for CD-Coloring and
records colors/rounds, demonstrating that t* balances connector-coloring
time against base-case time (the tradeoff Theorem 2.7 formalizes).
"""

import pytest

from repro.analysis import verify_vertex_coloring
from repro.core import cd_coloring, choose_t_clique
from repro.graphs import line_graph_with_cover, random_regular


def instance():
    base = random_regular(32, 16, seed=17)
    return line_graph_with_cover(base)


T_SWEEP = (2, 3, 4, 6, 8)


@pytest.mark.parametrize("t", T_SWEEP)
def test_t_sweep(benchmark, record_info, t):
    graph, cover = instance()

    def run():
        return cd_coloring(graph, cover, x=1, t=t, trim=False)

    result = benchmark(run)
    verify_vertex_coloring(graph, result.coloring)
    t_star = choose_t_clique(cover.max_clique_size(), 1)
    record_info(
        benchmark,
        {
            "experiment": "ablation-t",
            "t": t,
            "t_star": t_star,
            "colors_used": result.colors_used,
            "colors_bound": result.palette_bound,
            "rounds_actual": result.rounds_actual,
            "rounds_modeled": result.rounds_modeled,
        },
    )
