"""Tests for the analytic [7]+[17] comparison rows."""

import pytest

from repro.errors import InvalidParameterError
from repro.baselines import table1_row, table2_row


class TestTable1Rows:
    def test_color_columns(self):
        row = table1_row(delta=100, n=1000, x=1)
        assert row.new_colors == 400  # 4 Delta
        assert row.previous_colors == pytest.approx(410)  # (4 + 0.1) Delta

    @pytest.mark.parametrize("x,factor", [(1, 4), (2, 8), (3, 16)])
    def test_doubling_color_ladder(self, x, factor):
        row = table1_row(delta=10, n=100, x=x)
        assert row.new_colors == factor * 10

    def test_new_rounds_beat_previous_asymptotically(self):
        row = table1_row(delta=10**8, n=10**6, x=1)
        assert row.round_speedup > 1

    def test_speedup_grows_with_delta(self):
        s1 = table1_row(delta=10**4, n=100, x=2).round_speedup
        s2 = table1_row(delta=10**8, n=100, x=2).round_speedup
        assert s2 > s1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            table1_row(delta=0, n=10, x=1)
        with pytest.raises(InvalidParameterError):
            table1_row(delta=10, n=10, x=0)


class TestTable2Rows:
    def test_color_columns(self):
        row = table2_row(diversity=2, clique_size=50, delta=90, n=1000, x=1)
        assert row.new_colors == 4 * 50  # D^2 S
        assert row.previous_colors == pytest.approx((4 + 0.1) * 90)

    def test_diversity_ladder(self):
        for d in (2, 3, 4):
            row = table2_row(diversity=d, clique_size=10, delta=30, n=100, x=2)
            assert row.new_colors == d**3 * 10

    def test_new_colors_can_beat_previous_when_s_below_delta(self):
        # S <= Delta is the regime where D^(x+1) S < (D^(x+1)+eps) Delta
        row = table2_row(diversity=2, clique_size=20, delta=38, n=100, x=1)
        assert row.new_colors < row.previous_colors

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            table2_row(diversity=0, clique_size=5, delta=5, n=10, x=1)
