"""Contiguous id-range partitioning and the ``.csrs`` shard format.

A bundle is a directory: one ``manifest.json`` plus one ``.csrs`` file
per shard. Shard ``s`` owns the dense global ids ``[lo, hi)`` and
stores:

* ``indptr`` — the parent's ``indptr[lo:hi+1]`` rebased to 0,
* ``indices`` — the owned rows' neighbor ids remapped to *local* ids:
  owned neighbors ``g`` become ``g - lo``; foreign neighbors become
  ``n_own + rank`` where ``rank`` indexes the sorted ``halo`` sideband,
* ``halo`` — the sorted global ids of every foreign neighbor,
* ``boundary`` — the sorted local ids of owned nodes with at least one
  foreign neighbor (the nodes whose state must be published each round).

Binary layout (version 1, little-endian)::

    0   magic      8   b"CSRSHARD"
    8   version    4   u32 = 1
    12  shard_id   4   u32
    16  num_shards 4   u32
    20  reserved   4   zero
    24  lo         8   u64 first owned global id
    32  n_own      8   u64 owned node count
    40  n_halo     8   u64 halo node count
    48  e_local    8   u64 directed edge count (len(indices))
    56  n_boundary 8   u64 boundary node count
    64  digest     32  parent graph's sha256 content address
    96  indptr     (n_own+1) * 8
    ..  indices    e_local * 8
    ..  halo       n_halo * 8
    ..  boundary   n_boundary * 8

Like ``.csrg``, opens are strict: the file size must equal the header's
promised extents exactly, and the arrays pass light structural
validation even when memory-mapped, so a truncated or mis-written shard
fails fast at open instead of faulting mid-round in a worker.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.errors import InvalidParameterError
from repro.graphcore import CompactGraph

PathLike = Union[str, Path]

MAGIC = b"CSRSHARD"
SHARD_VERSION = 1
_HEADER = struct.Struct("<8sIIII QQQQQ 32s")
HEADER_SIZE = _HEADER.size  # 96

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-shard-bundle"


def _shard_filename(shard_id: int) -> str:
    return f"shard-{shard_id:04d}.csrs"


@dataclass
class Shard:
    """One memory-mapped shard: the local CSR slice plus its sidebands."""

    shard_id: int
    num_shards: int
    lo: int
    n_own: int
    n_halo: int
    parent_digest: str
    indptr: np.ndarray
    indices: np.ndarray
    halo: np.ndarray
    boundary: np.ndarray

    @property
    def hi(self) -> int:
        return self.lo + self.n_own

    @property
    def n_local(self) -> int:
        return self.n_own + self.n_halo

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)


def _range_cuts(indptr: np.ndarray, n: int, num_shards: int) -> List[int]:
    """Contiguous range boundaries balanced by directed-edge count: shard
    ``s`` owns ``[cuts[s], cuts[s+1])``. Every shard owns at least one
    node (``num_shards <= n`` is validated by the caller), so degenerate
    degree distributions shift the edge balance rather than emptying a
    shard."""
    total = int(indptr[-1])
    cuts = [0]
    for k in range(1, num_shards):
        target = total * k / num_shards
        cut = int(np.searchsorted(indptr, target, side="left"))
        cut = max(cut, cuts[-1] + 1)  # non-empty shards
        cut = min(cut, n - (num_shards - k))  # leave room for the rest
        cuts.append(cut)
    cuts.append(n)
    return cuts


def partition(
    graph: CompactGraph, num_shards: int, out_dir: PathLike
) -> "ShardBundle":
    """Partition ``graph`` into ``num_shards`` contiguous id ranges and
    write the bundle (manifest + one ``.csrs`` per shard) into
    ``out_dir``. Returns the opened :class:`ShardBundle`.

    ``graph`` may come from any ingestion path — ``.csrg`` (typically
    memory-mapped), :func:`~repro.graphcore.read_metis`, or
    :func:`~repro.graphcore.read_edge_list` — anything already in CSR
    form partitions without an intermediate conversion.
    """
    if not isinstance(graph, CompactGraph):
        raise InvalidParameterError(
            "partition needs a CompactGraph (load the .csrg first)"
        )
    n = graph.n
    if num_shards < 1:
        raise InvalidParameterError("num_shards must be >= 1")
    if n and num_shards > n:
        raise InvalidParameterError(
            f"cannot cut {n} nodes into {num_shards} non-empty shards"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    digest = graph.digest()
    indptr = np.asarray(graph.indptr, dtype=np.int64)
    indices = np.asarray(graph.indices, dtype=np.int64)
    cuts = _range_cuts(indptr, n, num_shards) if n else [0] * (num_shards + 1)
    ranges = []
    for shard_id in range(num_shards):
        lo, hi = cuts[shard_id], cuts[shard_id + 1]
        n_own = hi - lo
        local_indptr = (indptr[lo : hi + 1] - indptr[lo]).astype(np.int64)
        row = indices[int(indptr[lo]) : int(indptr[hi])].astype(np.int64)
        own = (row >= lo) & (row < hi)
        halo = np.unique(row[~own])
        local = np.where(
            own, row - lo, n_own + np.searchsorted(halo, row)
        ).astype(np.int64)
        src = np.repeat(
            np.arange(n_own, dtype=np.int64), np.diff(local_indptr)
        )
        boundary = np.unique(src[~own])
        header = _HEADER.pack(
            MAGIC,
            SHARD_VERSION,
            shard_id,
            num_shards,
            0,
            lo,
            n_own,
            int(halo.size),
            int(local.size),
            int(boundary.size),
            bytes.fromhex(digest),
        )
        with open(out / _shard_filename(shard_id), "wb") as handle:
            handle.write(header)
            handle.write(np.ascontiguousarray(local_indptr).tobytes())
            handle.write(np.ascontiguousarray(local).tobytes())
            handle.write(np.ascontiguousarray(halo).tobytes())
            handle.write(np.ascontiguousarray(boundary).tobytes())
        ranges.append([int(lo), int(hi)])
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": SHARD_VERSION,
        "parent_digest": digest,
        "n": int(n),
        "m": int(graph.m),
        "max_degree": int(graph.max_degree),
        "num_shards": num_shards,
        "ranges": ranges,
    }
    tmp = out / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    tmp.replace(out / MANIFEST_NAME)
    return ShardBundle.open(out)


def load_shard(path: PathLike, expect: Dict[str, Any] = None) -> Shard:
    """Open one ``.csrs`` file memory-mapped, with the same strictness as
    :func:`repro.graphcore.load`: exact file-size check against the
    header extents, then light structural validation of every array.
    ``expect`` (a bundle manifest) cross-checks digest and shard count.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        raw = handle.read(HEADER_SIZE)
    if len(raw) < HEADER_SIZE:
        raise InvalidParameterError(f"{path}: truncated shard header")
    (
        magic,
        version,
        shard_id,
        num_shards,
        _reserved,
        lo,
        n_own,
        n_halo,
        e_local,
        n_boundary,
        digest,
    ) = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise InvalidParameterError(f"{path}: not a csrs shard (bad magic)")
    if version != SHARD_VERSION:
        raise InvalidParameterError(
            f"{path}: unsupported shard version {version} (this build reads "
            f"version {SHARD_VERSION})"
        )
    expected = HEADER_SIZE + 8 * ((n_own + 1) + e_local + n_halo + n_boundary)
    actual = path.stat().st_size
    if actual != expected:
        raise InvalidParameterError(
            f"{path}: file is {actual} bytes, header promises {expected}"
        )
    offset = HEADER_SIZE

    def _mapped(count: int) -> np.ndarray:
        nonlocal offset
        arr = np.memmap(path, dtype=np.int64, mode="r", offset=offset, shape=(count,))
        offset += 8 * count
        return arr

    indptr = _mapped(n_own + 1)
    indices = _mapped(e_local)
    halo = _mapped(n_halo)
    boundary = _mapped(n_boundary)
    if indptr[0] != 0 or indptr[-1] != e_local or np.any(np.diff(indptr) < 0):
        raise InvalidParameterError(f"{path}: corrupt shard indptr")
    n_local = n_own + n_halo
    if e_local and (indices.min() < 0 or indices.max() >= n_local):
        raise InvalidParameterError(f"{path}: shard indices out of local range")
    if n_halo and (np.any(np.diff(halo) <= 0) or halo.min() < 0):
        raise InvalidParameterError(f"{path}: halo sideband not sorted-unique")
    if n_halo and np.any((halo >= lo) & (halo < lo + n_own)):
        raise InvalidParameterError(f"{path}: halo sideband overlaps owned range")
    if n_boundary and (
        np.any(np.diff(boundary) <= 0)
        or boundary.min() < 0
        or boundary.max() >= n_own
    ):
        raise InvalidParameterError(f"{path}: boundary sideband out of range")
    shard = Shard(
        shard_id=shard_id,
        num_shards=num_shards,
        lo=lo,
        n_own=n_own,
        n_halo=n_halo,
        parent_digest=digest.hex(),
        indptr=indptr,
        indices=indices,
        halo=halo,
        boundary=boundary,
    )
    if expect is not None:
        if shard.parent_digest != expect["parent_digest"]:
            raise InvalidParameterError(
                f"{path}: shard belongs to a different parent graph "
                f"(digest {shard.parent_digest[:12]} != manifest "
                f"{expect['parent_digest'][:12]})"
            )
        if shard.num_shards != expect["num_shards"]:
            raise InvalidParameterError(
                f"{path}: shard count mismatch with manifest"
            )
        want_lo, want_hi = expect["ranges"][shard_id]
        if shard.lo != want_lo or shard.hi != want_hi:
            raise InvalidParameterError(
                f"{path}: owned range [{shard.lo}, {shard.hi}) disagrees "
                f"with manifest [{want_lo}, {want_hi})"
            )
    return shard


class ShardBundle:
    """An opened bundle: the manifest plus lazily memory-mapped shards."""

    def __init__(self, directory: Path, manifest: Dict[str, Any]):
        self.directory = Path(directory)
        self.manifest = manifest
        self._shards: Dict[int, Shard] = {}

    @classmethod
    def open(cls, directory: PathLike) -> "ShardBundle":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise InvalidParameterError(
                f"{directory}: not a shard bundle (no {MANIFEST_NAME})"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise InvalidParameterError(
                f"{manifest_path}: unknown manifest format "
                f"{manifest.get('format')!r}"
            )
        if manifest.get("version") != SHARD_VERSION:
            raise InvalidParameterError(
                f"{manifest_path}: unsupported bundle version "
                f"{manifest.get('version')}"
            )
        if len(manifest["ranges"]) != manifest["num_shards"]:
            raise InvalidParameterError(
                f"{manifest_path}: {manifest['num_shards']} shards declared "
                f"but {len(manifest['ranges'])} ranges listed"
            )
        for path in (
            directory / _shard_filename(s) for s in range(manifest["num_shards"])
        ):
            if not path.exists():
                raise InvalidParameterError(f"{directory}: missing {path.name}")
        return cls(directory, manifest)

    @property
    def num_shards(self) -> int:
        return int(self.manifest["num_shards"])

    @property
    def parent_digest(self) -> str:
        return self.manifest["parent_digest"]

    def shard_path(self, shard_id: int) -> Path:
        return self.directory / _shard_filename(shard_id)

    def shard(self, shard_id: int) -> Shard:
        """Open (and cache) shard ``shard_id``, validated against the
        manifest."""
        if shard_id not in self._shards:
            if not 0 <= shard_id < self.num_shards:
                raise InvalidParameterError(
                    f"shard {shard_id} outside 0..{self.num_shards - 1}"
                )
            self._shards[shard_id] = load_shard(
                self.shard_path(shard_id), expect=self.manifest
            )
        return self._shards[shard_id]

    def boundary_table(self) -> Dict[str, Any]:
        """The coordinator's exchange maps, built once per bundle:

        * ``boundary_global`` — every boundary node's global id, in shard
          order (globally sorted because ranges are contiguous),
        * ``offsets`` — per-shard slice boundaries into that table,
        * ``halo_sources[s]`` — positions in the table holding shard
          ``s``'s halo values (each halo node of ``s`` is by construction
          a boundary node of its owner — validated here).
        """
        boundary_parts = []
        offsets = [0]
        for s in range(self.num_shards):
            shard = self.shard(s)
            boundary_parts.append(np.asarray(shard.boundary) + shard.lo)
            offsets.append(offsets[-1] + int(shard.boundary.size))
        boundary_global = (
            np.concatenate(boundary_parts)
            if boundary_parts
            else np.empty(0, dtype=np.int64)
        )
        halo_sources = []
        for s in range(self.num_shards):
            halo = np.asarray(self.shard(s).halo)
            pos = np.searchsorted(boundary_global, halo)
            if halo.size and (
                pos.max(initial=0) >= boundary_global.size
                or np.any(boundary_global[pos] != halo)
            ):
                raise InvalidParameterError(
                    f"bundle {self.directory}: shard {s} references halo "
                    "nodes that are not boundary nodes of their owner — "
                    "bundle is corrupt"
                )
            halo_sources.append(pos)
        return {
            "boundary_global": boundary_global,
            "offsets": offsets,
            "halo_sources": halo_sources,
        }
