"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``info --graph FILE`` — structural parameters (n, m, Delta, arboricity
  bounds, degeneracy) of an edge-list graph.
* ``algorithms`` — the unified algorithm registry: every runnable
  algorithm with its family, kind, color bound and parameters
  (compact-capable algorithms carry a ``[compact]`` marker).
* ``kernels`` — the whole-round CSR kernel layer: which per-node
  algorithms have a registered kernel, whether the optional numba fast
  path is live (``REPRO_NUMBA``), and which registry algorithms consume
  ``CompactGraph`` natively vs. through the conversion fallback.
* ``run`` — run any registered algorithm on a graph file or a named
  workload; ``--seeds`` + ``--jobs`` fan a seed batch across processes,
  ``--engine`` picks the execution engine.
* ``color --graph FILE --algorithm NAME`` — the original edge-coloring
  front-end (kept for compatibility; now registry-resolved).
* ``sweep`` — a Delta ladder for one algorithm across random regular
  graphs, with per-point engine/jobs control.
* ``campaign`` — ``run``/``check`` persist and diff the table-reproduction
  record grid; ``cells`` streams the (algorithm x workload x seed) cell
  grid across a process pool with bounded in-flight submission, optionally
  against a content-addressed experiment store (``--store runs.db``) that
  persists every cell the instant it completes, so already-computed cells
  are served from SQLite and a killed campaign resumes with ``--resume``.
  ``--retries N`` re-runs failing cells, ``--progress`` repaints a stderr
  status line (done/total, hit/miss/error counts, ETA).
* ``graph`` — the compact graph store front-end: ``build`` streams a
  named workload into a ``.csrg`` CSR file (the xl family never touches
  networkx), ``info`` prints a file's header and shape, ``convert``
  moves between edge-list / METIS / ``.csrg`` representations. Saved
  graphs feed back into ``run --graph FILE.csrg`` (memory-mapped open).
* ``workloads`` — the declarative workload registry: every named graph
  scenario with its family and default parameters (``--family`` filters
  by prefix; scale/xl rows are marked as excluded from the default
  campaign grid).
* ``query`` — filter and print rows of an experiment store
  (``--unverified`` / ``--verdict`` select on verification state).
* ``gc`` — drop unreachable store rows (stale code versions, errors,
  ``--failed`` verdicts).
* ``verify`` — re-execute and re-verify persisted store rows against the
  invariant oracles (:mod:`repro.verify`), and ``--diff``: run sampled
  cells under every engine and compare the outputs field by field.
* ``tables`` / ``figures`` / ``experiments`` — the paper-reproduction
  harnesses.

Engine selection (``--engine {reference,vector}``) routes every simulated
round through :mod:`repro.engine`; ``--jobs N`` parallelizes across worker
processes wherever the subcommand has more than one unit of work
(defaulting to one worker per CPU).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import io as repro_io
from repro import registry
from repro.engine import available_engines, use_engine
from repro.errors import ColoringError
from repro.graphs.properties import arboricity_bounds, degeneracy, max_degree

#: Edge-coloring algorithms exposed by ``color`` (registry-resolved; kept
#: as a module constant for backwards compatibility).
EDGE_ALGORITHMS = tuple(registry.names(kind="edge-coloring"))


def _algorithm_params(spec: registry.AlgorithmSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """Map recognized CLI flags onto the parameters the algorithm accepts."""
    params: Dict[str, Any] = {}
    if "x" in spec.params and getattr(args, "x", None) is not None:
        params["x"] = args.x
    if "arboricity" in spec.params and getattr(args, "arboricity", None) is not None:
        params["arboricity"] = args.arboricity
    if "seed" in spec.params and getattr(args, "algo_seed", None) is not None:
        params["seed"] = args.algo_seed
    return params


def _verify_run(graph, run: registry.AlgorithmRun, params=None) -> None:
    """Run the algorithm's declared invariant oracles; a ``fail`` verdict
    aborts the command (single-run front-ends never print unverified
    results)."""
    from repro.verify import verify_run

    verdict = verify_run(graph, run, params=params)
    if verdict.status == "fail":
        raise ColoringError(f"{run.name}: {verdict.violation}")


def _read_graph_file(path: str):
    """A graph from disk: ``.csrg`` files open memory-mapped through the
    graph core, anything else parses as a whitespace edge list."""
    if str(path).endswith(".csrg"):
        from repro import graphcore

        return graphcore.load(path, mmap=True)
    return repro_io.read_edge_list(path)


def cmd_info(args: argparse.Namespace) -> int:
    graph = _read_graph_file(args.graph)
    if hasattr(graph, "to_networkx"):
        # the structural-parameter helpers below need the nx surface
        graph = graph.to_networkx()
    bounds = arboricity_bounds(graph)
    print(f"n          = {graph.number_of_nodes()}")
    print(f"m          = {graph.number_of_edges()}")
    print(f"Delta      = {max_degree(graph)}")
    print(f"degeneracy = {degeneracy(graph)}")
    print(f"arboricity in [{bounds.lower}, {bounds.upper}]")
    return 0


def cmd_algorithms(args: argparse.Namespace) -> int:
    specs = registry.specs(family=args.family, kind=args.kind)
    if not specs:
        print("no algorithms match the filter")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        params = f" params: {', '.join(spec.params)}" if spec.params else ""
        requires = f" requires: {', '.join(spec.requires)}" if spec.requires else ""
        compact = " [compact]" if spec.compact_ok else ""
        print(
            f"{spec.name:<{width}}  [{spec.family}/{spec.kind}] "
            f"{spec.color_bound} colors, {spec.rounds_bound}{params}{requires}{compact}"
        )
        if args.verbose:
            print(f"{'':<{width}}  {spec.summary}")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    """The kernel layer's introspection surface: which per-node algorithms
    have a whole-round CSR kernel, whether the numba fast path is live,
    and which registry algorithms consume CompactGraph natively."""
    from repro import kernels

    compact_specs = [spec for spec in registry.specs() if spec.compact_ok]
    payload = {
        "kernels": kernels.kernel_names(),
        "numba_available": kernels.numba_available(),
        "numba_enabled": kernels.numba_enabled(),
        "compact_ok": sorted(spec.name for spec in compact_specs),
        "compact_fallback": sorted(
            spec.name for spec in registry.specs() if not spec.compact_ok
        ),
    }
    if args.json:
        json.dump(payload, sys.stdout, indent=1)
        print()
        return 0
    print("whole-round CSR kernels (VectorEngine, CompactGraph input):")
    for name in payload["kernels"]:
        print(f"  {name}")
    state = "enabled" if payload["numba_enabled"] else (
        "available but disabled" if payload["numba_available"] else "absent"
    )
    print(f"numba fast path (REPRO_NUMBA): {state}; pure-numpy results are")
    print("identical either way (tools/ci.sh gates byte-parity).")
    print(
        f"compact-capable algorithms ({len(payload['compact_ok'])}"
        f"/{len(registry.names())}): {', '.join(payload['compact_ok'])}"
    )
    if payload["compact_fallback"]:
        print(
            "conversion fallback (PerformanceWarning on CompactGraph input): "
            + ", ".join(payload["compact_fallback"])
        )
    return 0


def cmd_color(args: argparse.Namespace) -> int:
    graph = repro_io.read_edge_list(args.graph)
    spec = registry.get(args.algorithm)
    params = _algorithm_params(spec, args)
    run = registry.run(args.algorithm, graph, engine=args.engine, **params)
    _verify_run(graph, run, params=params)
    delta = max_degree(graph)
    print(f"algorithm      = {args.algorithm}")
    print(f"Delta          = {delta}")
    print(f"colors         = {run.colors_used}")
    if run.rounds_actual is not None:
        print(f"rounds         = {run.rounds_actual:.0f}")
    if run.rounds_modeled is not None:
        print(f"rounds modeled = {run.rounds_modeled:.0f}")
    if args.output:
        repro_io.save_edge_coloring(run.coloring, args.output)
        print(f"wrote {args.output}")
    return 0


def _enter_cli_sharding(stack, graph, args: argparse.Namespace):
    """Install a sharded-execution scope for ``repro run --graph ...
    --shards N``: reuse a valid bundle from ``--shard-dir`` (same parent
    digest, same shard count) or partition one — into the shard dir if
    given, a temporary directory otherwise. Workers run as processes;
    ``--checkpoint`` makes the round loop resumable."""
    import tempfile

    from repro import graphcore
    from repro.shard import ShardBundle, partition, sharding

    if not isinstance(graph, graphcore.CompactGraph):
        raise SystemExit(
            "--shards needs a .csrg graph (partitioning works on CSR "
            "arrays; convert first with: repro graph convert)"
        )
    # the .csrg header already carries the content digest — don't re-hash
    # a memory-mapped multi-million-node array set.
    if str(args.graph).endswith(".csrg"):
        digest = graphcore.read_info(args.graph)["digest"]
    else:
        digest = graph.digest()
    bundle = None
    if args.shard_dir and (Path(args.shard_dir) / "manifest.json").exists():
        candidate = ShardBundle.open(args.shard_dir)
        if (
            candidate.parent_digest == digest
            and candidate.num_shards == args.shards
        ):
            bundle = candidate
        else:
            print(
                f"shard dir {args.shard_dir} holds a different partition "
                f"({candidate.num_shards} shards of "
                f"{candidate.parent_digest[:12]}); repartitioning"
            )
    if bundle is None:
        out = args.shard_dir or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-shards-")
        )
        bundle = partition(graph, args.shards, out)
    return stack.enter_context(
        sharding(
            graph,
            bundle,
            checkpoint=args.checkpoint,
            parent_digest=digest,
        )
    )


def cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        CampaignCell,
        CampaignRunner,
        build_workload,
        workload_names,
    )

    spec = registry.get(args.algorithm)
    params = _algorithm_params(spec, args)

    if args.graph:
        import contextlib

        graph = _read_graph_file(args.graph)
        shard_stats = None
        with contextlib.ExitStack() as stack:
            scope = (
                _enter_cli_sharding(stack, graph, args)
                if getattr(args, "shards", None)
                else None
            )
            run = registry.run(args.algorithm, graph, engine=args.engine, **params)
            if scope is not None:
                shard_stats = scope.last_stats
        _verify_run(graph, run, params=params)
        rows = [
            {
                "algorithm": args.algorithm,
                "workload": args.graph,
                "seed": None,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "colors_used": run.colors_used,
                "rounds_actual": run.rounds_actual,
                "rounds_modeled": run.rounds_modeled,
                "engine": args.engine,
                "error": None,
            }
        ]
        if shard_stats is not None:
            rows[0]["shards"] = shard_stats["shards"]
            rows[0]["shard_stats"] = shard_stats
            print(
                f"sharded: {shard_stats['shards']} shards "
                f"({shard_stats['pool']} pool), "
                f"{shard_stats['rounds_executed']} exchange rounds, "
                f"worker peak rss {shard_stats['worker_peak_rss_kb']} KB"
                + (" [resumed]" if shard_stats["resumed"] else "")
            )
        elif getattr(args, "shards", None):
            print(
                "sharded: requested but the run fell back to the engine "
                "path (no shard program for this algorithm/input — see the "
                "shard.fallback counter)"
            )
    else:
        if args.workload not in workload_names():
            raise SystemExit(
                f"unknown workload {args.workload!r}; choose from {workload_names()}"
            )
        workload_params = dict(args.workload_param or ())
        seeds = args.seeds
        cells = [
            CampaignCell(
                algorithm=args.algorithm,
                workload=args.workload,
                workload_params=workload_params,
                seed=seed,
                algo_params=params,
                shards=getattr(args, "shards", None),
            )
            for seed in seeds
        ]
        with _trace_env(getattr(args, "trace", None)):
            rows = CampaignRunner(
                cells, engine=args.engine, jobs=_resolve_jobs(args)
            ).run()

    failures = 0
    for row in rows:
        if row["error"]:
            failures += 1
            print(f"FAILED seed={row['seed']}: {row['error']}")
            continue
        rounds = (
            f" rounds={row['rounds_actual']:.0f}"
            if row.get("rounds_actual") is not None
            else ""
        )
        wall = f" wall={row['wall_ms']:.1f}ms" if "wall_ms" in row else ""
        seed = f" seed={row['seed']}" if row["seed"] is not None else ""
        print(
            f"{args.algorithm} on {row['workload']}{seed}: "
            f"n={row['n']} m={row['m']} colors={row['colors_used']}{rounds}{wall}"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=1)
        print(f"wrote {args.out}")
    return 1 if failures else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import CampaignCell, CampaignRunner

    spec = registry.get(args.algorithm)
    params = _algorithm_params(spec, args)
    cells = []
    for delta in args.deltas:
        nodes = args.n if (args.n * delta) % 2 == 0 else args.n + 1
        cells.append(
            CampaignCell(
                algorithm=args.algorithm,
                workload="random-regular",
                workload_params={"n": nodes, "d": delta},
                seed=args.seed,
                algo_params=params,
            )
        )
    rows = CampaignRunner(cells, engine=args.engine, jobs=_resolve_jobs(args)).run()
    print(f"# {args.algorithm} Delta sweep (engine={args.engine or 'default'})")
    print("| Delta | n | m | colors | rounds | modeled | wall_ms |")
    print("|---|---|---|---|---|---|---|")
    failures = 0
    for delta, row in zip(args.deltas, rows):
        if row["error"]:
            failures += 1
            print(f"| {delta} | FAILED: {row['error']} |")
            continue
        actual = (
            f"{row['rounds_actual']:.0f}" if row.get("rounds_actual") is not None else "—"
        )
        modeled = (
            f"{row['rounds_modeled']:.0f}" if row.get("rounds_modeled") is not None else "—"
        )
        print(
            f"| {delta} | {row['n']} | {row['m']} | {row['colors_used']} "
            f"| {actual} | {modeled} | {row['wall_ms']:.1f} |"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=1)
        print(f"wrote {args.out}")
    return 1 if failures else 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import main as tables_main

    with use_engine(args.engine):
        tables_main()
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import main as figures_main

    figures_main()
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import main as experiments_main

    with use_engine(args.engine):
        experiments_main([args.output] if args.output else [])
    return 0


def _trace_env(path: Optional[str]):
    """Scope ``REPRO_TRACE`` to one command: set it before any worker
    pool forks (children inherit the env and append to the same JSONL
    file), restore the previous value on exit so repeated ``main()``
    calls (tests) cannot leak a trace gate into each other."""
    import contextlib

    from repro.obs import TRACE_ENV

    if not path:
        return contextlib.nullcontext()

    @contextlib.contextmanager
    def scope():
        previous = os.environ.get(TRACE_ENV)
        os.environ[TRACE_ENV] = str(path)
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop(TRACE_ENV, None)
            else:
                os.environ[TRACE_ENV] = previous

    return scope()


def _progress_printer(min_interval_s: float = 0.1):
    """A ``CampaignRunner`` progress callback that repaints one stderr
    status line (cells done/total, hit/computed/error counts, ETA).

    Repaints are rate-limited to one per ``min_interval_s`` (the final
    snapshot always prints), so an all-hits warm run over a 100k-cell
    grid is not dominated by flushed terminal writes."""
    import time

    last = [0.0]

    def emit(progress) -> None:
        now = time.monotonic()
        if progress.done < progress.total and now - last[0] < min_interval_s:
            return
        last[0] = now
        # rate/eta extrapolate from *computed* cells only (cache hits are
        # effectively free, and mixing them in would collapse the ETA of
        # a warm resume toward zero).
        rate = progress.rate
        rate_text = f" rate={rate:.1f}/s" if rate is not None else ""
        eta = progress.eta_s
        eta_text = f" eta={eta:.0f}s" if eta is not None else ""
        print(
            f"\r[{progress.done}/{progress.total}] hits={progress.hits} "
            f"computed={progress.computed} errors={progress.errors} "
            f"retried={progress.retried}{rate_text}{eta_text} ",
            end="",
            file=sys.stderr,
            flush=True,
        )

    return emit


def _campaign_cells(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        CampaignRunner,
        default_cells,
        grid_cells,
        save_cell_results,
    )

    if not args.out and not args.store:
        raise SystemExit("campaign cells requires --out and/or --store")
    if args.resume and args.fresh:
        raise SystemExit("--resume and --fresh are mutually exclusive")
    if (args.resume or args.fresh) and not args.store:
        raise SystemExit("--resume/--fresh require --store")
    if args.resume and not Path(args.store).exists():
        raise SystemExit(
            f"--resume: no store at {args.store} (run once without --resume first)"
        )

    if args.algorithms or args.workloads or args.seeds is not None:
        from repro import registry as algo_registry
        from repro import workloads as workload_registry

        cells = grid_cells(
            algorithms=args.algorithms or algo_registry.names(),
            # The scale/xl tiers (>= 50k / >= 1M-node instances) only run
            # when named explicitly — the unfiltered default grid must
            # stay cheap. `repro workloads` marks the excluded rows.
            workloads=args.workloads or workload_registry.default_grid_names(),
            seeds=args.seeds if args.seeds is not None else [0],
        )
    else:
        cells = default_cells()

    store = None
    cache = None
    try:
        if args.store:
            from repro.store import ExperimentStore, RunCache

            store = ExperimentStore(args.store)
            cache = RunCache(store, refresh=args.fresh)
        runner = CampaignRunner(
            cells,
            engine=args.engine,
            jobs=_resolve_jobs(args),
            cache=cache,
            retries=args.retries,
            progress=_progress_printer() if args.progress else None,
        )
        with _trace_env(getattr(args, "trace", None)):
            results = runner.run()
    finally:
        if store is not None:
            store.close()
        if args.progress:
            print(file=sys.stderr)

    failed = [r for r in results if r["error"]]
    bad_verdicts = [r for r in results if r.get("verdict") == "fail"]
    # runner counters, so the summary agrees with --progress: in-run
    # duplicates (one computation shared across cells) count as hits
    served = runner.last_progress.hits
    if args.out:
        save_cell_results(results, args.out)
        print(f"saved {len(results)} cell results to {args.out}")
    if args.store:
        print(
            f"campaign: {len(results)} cells, {served} from cache, "
            f"{len(results) - served} computed, {len(failed)} failed, "
            f"{len(bad_verdicts)} invariant violations (store: {args.store})"
        )
    else:
        print(
            f"completed {len(results)} cells ({len(failed)} failed, "
            f"{len(bad_verdicts)} invariant violations)"
        )
    for row in failed:
        print(f"FAILED {row['algorithm']} on {row['workload']}: {row['error']}")
    for row in bad_verdicts:
        print(
            f"VIOLATION {row['algorithm']} on {row['workload']} "
            f"seed={row['seed']}: {row.get('violation')}"
        )
    return 1 if failed or bad_verdicts else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        compare_campaigns,
        default_grid,
        load_campaign,
        save_campaign,
    )

    if args.action == "cells":
        return _campaign_cells(args)

    if args.action == "run" and not args.out:
        raise SystemExit("campaign run requires --out")
    if args.action == "check" and not args.baseline:
        raise SystemExit("campaign check requires --baseline")
    with use_engine(args.engine):
        records = default_grid()
    if args.action == "run":
        save_campaign(records, args.out)
        print(f"saved {len(records)} records to {args.out}")
        return 0
    baseline = load_campaign(args.baseline)
    regressions = compare_campaigns(baseline, records)
    if regressions:
        for regression in regressions:
            print(f"REGRESSION {regression}")
        return 1
    print(f"no regressions across {len(records)} records")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro import workloads

    # --family is a *prefix* filter, so e.g. `--family s` selects scale
    # and `--family x` the xl tier without spelling full family names.
    specs = [
        spec
        for spec in workloads.specs()
        if args.family is None or spec.family.startswith(args.family)
    ]
    if not specs:
        print("no workloads match the filter")
        return 1
    excluded = workloads.EXCLUDED_FROM_DEFAULT_GRID
    if args.json:
        payload = [
            {
                "name": spec.name,
                "family": spec.family,
                "seeded": spec.seeded,
                "compact": spec.compact,
                "default_grid": spec.family not in excluded,
                "defaults": dict(spec.defaults),
                "summary": spec.summary,
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        defaults = ", ".join(f"{k}={v}" for k, v in sorted(spec.defaults.items()))
        seeded = "seeded" if spec.seeded else "deterministic"
        mark = "  [excluded from default grid]" if spec.family in excluded else ""
        print(f"{spec.name:<{width}}  [{spec.family}/{seeded}] {defaults}{mark}")
        if args.verbose:
            print(f"{'':<{width}}  {spec.summary}")
    return 0


def _graph_build(args: argparse.Namespace) -> int:
    from repro import graphcore, workloads

    if not args.out:
        raise SystemExit("graph build requires --out")
    if not args.workload:
        raise SystemExit("graph build requires --workload")
    if args.workload not in workloads.names():
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from {workloads.names()}"
        )
    graph = workloads.build(
        args.workload, dict(args.workload_param or ()), seed=args.seed
    )
    if not isinstance(graph, graphcore.CompactGraph):
        graph = graphcore.CompactGraph.from_networkx(graph)
    digest = graphcore.save(graph, args.out)
    print(
        f"wrote {args.out}: n={graph.n} m={graph.m} "
        f"Delta={graph.max_degree} digest={digest}"
    )
    return 0


def _graph_info(args: argparse.Namespace) -> int:
    from repro import graphcore

    if not args.graph:
        raise SystemExit("graph info requires --graph")
    info = graphcore.read_info(args.graph)
    graph = graphcore.load(args.graph, mmap=True)
    n = info["n"]
    print(f"path        = {info['path']}")
    print(f"format      = csrg v{info['version']}")
    print(f"n           = {n}")
    print(f"m           = {info['m']}")
    print(f"Delta       = {graph.max_degree}")
    print(f"avg degree  = {2 * info['m'] / n if n else 0:.3f}")
    print(f"digest      = {info['digest']}")
    print(f"file bytes  = {info['file_bytes']}")
    print(f"indices     = int{8 * info['indices_itemsize']}")
    print(f"labels      = {'yes' if info['has_labels'] else 'no'}")
    print(f"node attrs  = {'yes' if info['has_node_attrs'] else 'no'}")
    return 0


def _graph_convert(args: argparse.Namespace) -> int:
    from repro import graphcore

    src, dst = args.input, args.out
    if not src or not dst:
        raise SystemExit("graph convert requires --in and --out")
    if src.endswith(".csrg"):
        graph = graphcore.load(src, mmap=False, verify=True)
    elif src.endswith((".metis", ".graph")):
        graph = graphcore.read_metis(src)
    else:
        graph = graphcore.read_edge_list(src)
    if dst.endswith(".csrg"):
        digest = graphcore.save(graph, dst)
    elif dst.endswith((".metis", ".graph")):
        raise SystemExit("graph convert: METIS export is not supported (read-only format)")
    else:
        if graph.labels is not None:
            raise SystemExit(
                "graph convert: edge-list export needs dense integer nodes "
                "(this graph carries a label sideband)"
            )
        if graph.node_attrs:
            raise SystemExit(
                "graph convert: edge-list export would drop this graph's "
                "node attributes (keep it in .csrg form)"
            )
        graphcore.write_edge_list(graph, dst)
        digest = graph.digest()
    print(f"wrote {dst}: n={graph.n} m={graph.m} digest={digest}")
    return 0


def _graph_partition(args: argparse.Namespace) -> int:
    from repro import graphcore
    from repro.shard import partition

    if not args.graph:
        raise SystemExit("graph partition requires --graph FILE.csrg")
    if not args.out:
        raise SystemExit("graph partition requires --out DIR")
    if not args.shards or args.shards < 1:
        raise SystemExit("graph partition requires --shards N (N >= 1)")
    graph = graphcore.load(args.graph, mmap=True)
    bundle = partition(graph, args.shards, args.out)
    total_halo = sum(
        bundle.shard(s).n_halo for s in range(bundle.num_shards)
    )
    total_boundary = sum(
        int(bundle.shard(s).boundary.size) for s in range(bundle.num_shards)
    )
    print(
        f"wrote {args.out}: {bundle.num_shards} shards of n={graph.n} "
        f"m={graph.m} (parent digest {bundle.parent_digest[:12]})"
    )
    for s in range(bundle.num_shards):
        shard = bundle.shard(s)
        print(
            f"  shard {s:>3}: own [{shard.lo}, {shard.hi}) "
            f"({shard.n_own} nodes, {int(shard.indices.size)} directed edges, "
            f"halo {shard.n_halo}, boundary {int(shard.boundary.size)})"
        )
    print(f"cut surface: {total_boundary} boundary / {total_halo} halo nodes")
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    return {
        "build": _graph_build,
        "info": _graph_info,
        "convert": _graph_convert,
        "partition": _graph_partition,
    }[args.action](args)


def _open_store(path: str):
    from repro.store import ExperimentStore

    if not Path(path).exists():
        raise SystemExit(
            f"no experiment store at {path} "
            f"(create one with: repro campaign cells --store {path})"
        )
    return ExperimentStore(path)


def cmd_query(args: argparse.Namespace) -> int:
    from repro.store import stable_row

    filters = {
        "algorithm": args.algorithm,
        "family": args.family,
        "workload": args.workload,
        "engine": args.query_engine,
        "seed": args.seed,
        "kind": args.kind,
        "verdict": args.verdict,
    }
    with _open_store(args.store) as store:
        rows = store.query(
            include_errors=not args.no_errors,
            unverified=args.unverified,
            **{k: v for k, v in filters.items() if v is not None},
        )
    if args.slowest is not None:
        return _query_slowest(rows, args.slowest)
    if args.format == "json":
        text = json.dumps([stable_row(r) for r in rows], indent=1, sort_keys=True)
    elif args.format == "markdown":
        from repro.analysis.tables import cell_rows_markdown

        text = cell_rows_markdown(rows)
    else:
        from repro.analysis.dataframes import cell_frame
        from repro.analysis.tables import CELL_ROW_COLUMNS

        header = " ".join(f"{c:>14}" for c in CELL_ROW_COLUMNS)
        body = [
            " ".join(f"{str(r.get(c, '')):>14}" for c in CELL_ROW_COLUMNS)
            for r in cell_frame(rows)
        ]
        text = "\n".join([header, *body, f"({len(rows)} rows)"])
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(rows)} rows to {args.out}")
    else:
        print(text)
    return 0


def _query_slowest(rows: List[Dict[str, Any]], top: int) -> int:
    """``repro query --slowest N``: rank stored rows by the ``wall_ms``
    column — the one timing present for every schema version — so one
    ranking never orders the v3 metrics blob's ``compute_ms`` against
    another row's ``wall_ms``. Each line labels its source; v3 rows also
    show the metrics compute-phase timing as detail."""
    from repro.obs import campaign_stats

    stats = campaign_stats(rows, top=top)
    if not stats["slowest"]:
        print("(no timed rows — the store has no wall_ms data)")
        return 0
    for item in stats["slowest"]:
        key = item.get("run_key") or ""
        key_text = f"  [{key[:12]}]" if key else ""
        print(f"{item['ms']:>12.1f}ms  {item['cell']}  ({item['source']}){key_text}")
    if stats["pre_v3"]:
        print(
            f"note: {stats['pre_v3']} of {stats['cells']} rows predate the "
            "metrics column (schema v3); they rank by wall_ms like every "
            "row but carry no per-phase detail — re-run their cells with "
            "--fresh to backfill metrics"
        )
    if stats.get("untimed"):
        print(
            f"note: {stats['untimed']} rows have no wall_ms column and are "
            "excluded from the ranking"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Aggregate stored per-cell metrics into the campaign report:
    slowest cells, fallback/warning counters, cache-hit rate of the last
    campaign, per-algorithm round/time distributions."""
    from repro.obs import campaign_stats, render_stats

    filters = {
        "algorithm": args.algorithm,
        "workload": args.workload,
        "engine": args.query_engine,
    }
    with _open_store(args.store) as store:
        rows = store.query(**{k: v for k, v in filters.items() if v is not None})
        summary = store.get_meta("last_campaign")
    stats = campaign_stats(rows, top=args.top)
    print(render_stats(stats, summary=summary if isinstance(summary, dict) else None))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render the campaign report (frontier tables, verdict ledger,
    bench history, campaign breakdown, optional span timeline) from a
    store into a self-contained HTML/markdown/CSV bundle."""
    from repro.analysis.report import build_report, write_report

    with _open_store(args.store) as store:
        rows = store.query()
        summary = store.get_meta("last_campaign")
    events = None
    if args.trace:
        from repro.obs import load_events

        if not Path(args.trace).exists():
            raise SystemExit(f"no trace file at {args.trace}")
        events = load_events(args.trace)
    if args.timestamp is not None:
        timestamp = args.timestamp
    else:
        import datetime as _dt

        timestamp = _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds")
    report = build_report(
        rows,
        summary=summary if isinstance(summary, dict) else None,
        bench_dir=args.bench_dir,
        events=events,
        timestamp=timestamp,
        store_label=Path(args.store).name,
    )
    written = write_report(report, args.out, fmt=args.format)
    for path in written:
        print(f"wrote {path}")
    for bench in report["flagged_benches"]:
        print(f"FLAGGED: BENCH_{bench}.json has passed=false")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a JSONL trace file: ``show`` renders the per-process
    timeline, ``validate`` checks every line against the event schema."""
    from repro.obs import (
        load_events,
        render_events,
        summarize_events,
        validate_trace_file,
    )

    if not Path(args.file).exists():
        raise SystemExit(f"no trace file at {args.file}")
    if args.action == "validate":
        count, problems = validate_trace_file(args.file)
        for problem in problems:
            print(problem)
        print(f"{args.file}: {count} events, {len(problems)} problems")
        return 1 if problems else 0
    events = load_events(args.file)
    summary = summarize_events(events)
    total_span = sum(summary["span_ms"].values())
    print(
        f"{args.file}: {summary['events']} events across "
        f"{len(summary['pids'])} process(es), "
        f"{len(summary['names'])} distinct names, "
        f"{total_span:.1f}ms total span time"
    )
    print(render_events(events, max_events=args.max_events, name_prefix=args.name or ""))
    return 0


def cmd_gc(args: argparse.Namespace) -> int:
    import repro
    from repro import workloads

    # Migration: run keys normalize the seed of unseeded (deterministic-
    # topology) workloads to 0. Rows such workloads stored under nonzero
    # seeds predate that normalization and can never be addressed again,
    # so gc treats them like rows from a stale code version.
    unseeded = [spec.name for spec in workloads.specs() if not spec.seeded]
    with _open_store(args.store) as store:
        before = len(store)
        stale_seeds = store.gc(
            unseeded_workloads=unseeded, drop_errors=False, dry_run=True
        )
        affected = store.gc(
            keep_code_version=None if args.all_versions else repro.__version__,
            drop_errors=not args.keep_errors,
            drop_failed=args.failed,
            dry_run=args.dry_run,
            unseeded_workloads=unseeded,
        )
        remaining = before - (0 if args.dry_run else affected)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{verb} {affected} of {before} rows ({remaining} remain)")
    if stale_seeds:
        print(
            f"note: {stale_seeds} rows held unseeded workloads under a "
            "nonzero seed — unreachable since run keys normalized those "
            "seeds to 0 (pre-normalization stores recomputed identical "
            "deterministic topologies once per seed)"
        )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the project-native static-analysis pass (see repro.checks)."""
    from pathlib import Path

    from repro import checks

    root = Path(args.root) if args.root else None

    if args.list:
        catalogue = {r.name: r for r in checks.rule_catalogue()}
        catalogue[checks.engine.WAIVER_SYNTAX_RULE.name] = (
            checks.engine.WAIVER_SYNTAX_RULE
        )
        for name in sorted(catalogue):
            rule = catalogue[name]
            print(f"{name}  [{rule.family}]\n    {rule.summary}")
        return 0

    if args.update_baseline:
        path = checks.write_baseline(root)
        print(f"wrote {path}")

    report = checks.run_checks(root=root, rules=args.rule or None)
    if args.json:
        print(checks.render_json(report))
    else:
        print(report.render())
    return 1 if report.fired else 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Re-verify persisted store rows and/or run differential
    cross-engine checks."""
    import repro
    from repro.verify import default_diff_cells, differential_check, recheck_row

    if not args.store and not args.diff:
        raise SystemExit("verify requires --store and/or --diff")

    exit_code = 0

    if args.store:
        filters = {
            "algorithm": args.algorithm,
            "workload": args.workload,
            "engine": args.query_engine,
            "seed": args.seed,
        }
        if not args.all_versions:
            # Rows from other builds legitimately diverge from a re-run
            # under this build; their keys are unreachable anyway (gc
            # territory), so recheck only current-version rows by default.
            filters["code_version"] = repro.__version__
        with _open_store(args.store) as store:
            rows = store.query(
                unverified=args.unverified,
                **{k: v for k, v in filters.items() if v is not None},
            )
            if args.limit is not None:
                rows = rows[: args.limit]
            rechecked = flagged = skipped = 0
            for row in rows:
                if row.get("error"):
                    skipped += 1  # errored cells are retried by campaigns
                    continue
                result = recheck_row(row)
                rechecked += 1
                if not args.dry_run:
                    store.set_verdict(row["run_key"], result.status, result.violation)
                # 'skip' (no oracle applies) is a healthy outcome, same as
                # in campaigns; only genuine failures flag the store.
                if result.status in ("fail", "error"):
                    flagged += 1
                    print(
                        f"FLAGGED {row['algorithm']} on {row['workload']} "
                        f"seed={row['seed']} [{row['run_key'][:12]}]: "
                        f"{result.status}: {result.violation}"
                    )
            print(
                f"verify: {rechecked} rows re-checked, {flagged} flagged, "
                f"{skipped} skipped (errored) in {args.store}"
            )
            if flagged:
                exit_code = 1

    if args.diff:
        cells = default_diff_cells()
        if args.algorithms:
            cells = [c for c in cells if c["algorithm"] in args.algorithms]
        if args.workloads:
            cells = [c for c in cells if c["workload"] in args.workloads]
        if not cells:
            raise SystemExit(
                "verify --diff: no differential cells match the filters "
                "(the sample covers: "
                + ", ".join(sorted({c["algorithm"] for c in default_diff_cells()}))
                + " x "
                + ", ".join(sorted({c["workload"] for c in default_diff_cells()}))
                + ")"
            )
        diverged = 0
        for cell in cells:
            result = differential_check(**cell)
            if not result.ok:
                diverged += 1
                print(f"DIVERGED {result.describe()}")
            elif args.verbose:
                print(result.describe())
        print(
            f"differential: {len(cells)} cells x engines (reference, vector), "
            f"{diverged} diverged"
        )
        if diverged:
            exit_code = 1

    return exit_code


class _WorkloadParam(argparse.Action):
    """Parse repeated ``--workload-param key=value`` pairs (ints when they
    look like ints, floats when they look like floats)."""

    def __call__(self, parser, namespace, values, option_string=None):
        key, _, raw = values.partition("=")
        if not key or not raw:
            raise argparse.ArgumentError(self, f"expected key=value, got {values!r}")
        value: Any = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        existing = list(getattr(namespace, self.dest) or [])
        existing.append((key, value))
        setattr(namespace, self.dest, existing)


def _int_list(raw: str) -> List[int]:
    try:
        values = [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {raw!r}")
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _str_list(raw: str) -> List[str]:
    values = [part.strip() for part in raw.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected at least one name")
    return values


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}")
    return value


def _nonnegative_int(raw: str) -> int:
    value = int(raw)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {raw!r}"
        )
    return value


def _engine_name(raw: str) -> str:
    """Validate an engine name against the live engine registry, with the
    available choices in the error instead of a traceback."""
    engines = available_engines()
    if raw not in engines:
        raise argparse.ArgumentTypeError(
            f"unknown engine {raw!r}; available engines: {', '.join(engines)}"
        )
    return raw


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def _add_engine_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        type=_engine_name,
        metavar="{" + ",".join(available_engines()) + "}",
        default=None,
        help="execution engine for every simulated round (default: reference; "
        "vector is the CSR/event-driven engine, identical results, faster at scale)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for multi-cell work "
        f"(default: one per CPU, {_default_jobs()} here)",
    )


def _resolve_jobs(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", None)
    return jobs if jobs is not None else _default_jobs()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Barenboim-Elkin-Maimon (PODC 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="structural parameters of a graph")
    info.add_argument("--graph", required=True, help="edge-list file")
    info.set_defaults(func=cmd_info)

    algorithms = sub.add_parser(
        "algorithms", help="list the unified algorithm registry"
    )
    algorithms.add_argument("--family", choices=registry.FAMILIES, default=None)
    algorithms.add_argument("--kind", choices=registry.KINDS, default=None)
    algorithms.add_argument("-v", "--verbose", action="store_true")
    algorithms.set_defaults(func=cmd_algorithms)

    kernels = sub.add_parser(
        "kernels",
        help="the whole-round CSR kernel layer: registered kernels, "
        "numba fast-path state, compact-capable algorithms",
    )
    kernels.add_argument("--json", action="store_true")
    kernels.set_defaults(func=cmd_kernels)

    run = sub.add_parser(
        "run",
        help="run any registered algorithm on a graph file or named workload",
    )
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="edge-list file")
    source.add_argument("--workload", help="named workload generator")
    run.add_argument(
        "--workload-param",
        action=_WorkloadParam,
        metavar="KEY=VALUE",
        default=None,
        help="workload generator parameter (repeatable), e.g. --workload-param n=96",
    )
    run.add_argument("--algorithm", required=True, choices=registry.names())
    run.add_argument("--x", type=int, default=None, help="recursion depth")
    run.add_argument("--arboricity", type=int, default=None, help="arboricity bound")
    run.add_argument("--algo-seed", type=int, default=None, help="algorithm RNG seed")
    run.add_argument(
        "--seeds",
        type=_int_list,
        default=[0],
        help="comma-separated workload seeds (each is one cell), e.g. 0,1,2,3",
    )
    run.add_argument("--out", help="write structured JSON results")
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="execute sharded out-of-core: partition the graph into N "
        "id-range shards, one mmap-backed worker each, one bulk-"
        "synchronous exchange per round — bit-identical results at "
        "bounded per-worker memory (algorithms without a shard program "
        "fall back to the engine path, disclosed)",
    )
    run.add_argument(
        "--shard-dir",
        default=None,
        metavar="DIR",
        help="persistent shard bundle directory (with --graph): reused "
        "when it already holds this graph's partition, written otherwise "
        "(default: a temporary directory)",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint sharded round state into DIR after every "
        "exchange; a killed run resumes from the last completed round",
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream schema-versioned JSONL trace events (spans, engine "
        "rounds, kernel dispatches) to FILE while the cells execute "
        "(equivalent to setting REPRO_TRACE=FILE)",
    )
    _add_engine_jobs(run)
    run.set_defaults(func=cmd_run)

    color = sub.add_parser("color", help="edge-color a graph")
    color.add_argument("--graph", required=True, help="edge-list file")
    color.add_argument("--algorithm", default="star4", choices=EDGE_ALGORITHMS)
    color.add_argument("--x", type=int, default=1, help="recursion depth")
    color.add_argument("--output", help="write the coloring as JSON")
    color.add_argument("--engine", choices=available_engines(), default=None)
    color.set_defaults(func=cmd_color)

    sweep = sub.add_parser(
        "sweep", help="Delta ladder for one algorithm on random regular graphs"
    )
    sweep.add_argument("--algorithm", default="star", choices=registry.names())
    sweep.add_argument(
        "--deltas", type=_int_list, default=[8, 16, 24], help="comma-separated degrees"
    )
    sweep.add_argument("--n", type=int, default=80, help="vertices per point")
    sweep.add_argument("--seed", type=int, default=5, help="workload seed")
    sweep.add_argument("--x", type=int, default=None, help="recursion depth")
    sweep.add_argument("--arboricity", type=int, default=None)
    sweep.add_argument("--out", help="write structured JSON results")
    _add_engine_jobs(sweep)
    sweep.set_defaults(func=cmd_sweep)

    tables = sub.add_parser("tables", help="print the table reproductions")
    tables.add_argument("--engine", choices=available_engines(), default=None)
    tables.set_defaults(func=cmd_tables)

    figures = sub.add_parser("figures", help="print the figure bound checks")
    figures.set_defaults(func=cmd_figures)

    experiments = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    experiments.add_argument("output", nargs="?", help="output path")
    experiments.add_argument("--engine", choices=available_engines(), default=None)
    experiments.set_defaults(func=cmd_experiments)

    campaign = sub.add_parser(
        "campaign", help="run/compare persisted experiment campaigns"
    )
    campaign.add_argument(
        "action",
        choices=("run", "check", "cells"),
        help="run/check the record grid, or fan the cell grid across --jobs",
    )
    campaign.add_argument("--out", help="where to save the campaign (run/cells)")
    campaign.add_argument("--baseline", help="baseline file to compare against (check)")
    campaign.add_argument(
        "--store",
        help="experiment store (SQLite): cache hits skip recomputation and "
        "every finished cell is persisted immediately (cells)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed campaign against an existing --store",
    )
    campaign.add_argument(
        "--fresh",
        action="store_true",
        help="ignore cached cells and overwrite them in --store",
    )
    campaign.add_argument(
        "--algorithms",
        type=_str_list,
        default=None,
        help="comma-separated algorithm names for the cell grid "
        "(default: the compact builtin grid)",
    )
    campaign.add_argument(
        "--workloads",
        type=_str_list,
        default=None,
        help="comma-separated workload names for the cell grid (default: "
        "every registered workload except the scale family, which only "
        "runs when named explicitly)",
    )
    campaign.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=0,
        help="re-execute a failing cell up to N extra times before "
        "recording its error row (transient failures heal; deterministic "
        "ones just repeat)",
    )
    campaign.add_argument(
        "--progress",
        action="store_true",
        help="repaint a stderr status line per resolved cell: "
        "done/total, hit/computed/error counts, ETA (cells)",
    )
    campaign.add_argument(
        "--seeds",
        type=_int_list,
        default=None,
        help="comma-separated seeds for the cell grid, e.g. 0,1,2",
    )
    campaign.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream schema-versioned JSONL trace events to FILE while "
        "cells execute — worker processes inherit the gate and append to "
        "the same file (equivalent to setting REPRO_TRACE=FILE; cells)",
    )
    _add_engine_jobs(campaign)
    campaign.set_defaults(func=cmd_campaign)

    graph = sub.add_parser(
        "graph",
        help="build/inspect/convert compact graph files (.csrg)",
    )
    graph.add_argument(
        "action",
        choices=("build", "info", "convert", "partition"),
        help="build a workload into a .csrg file, print a file's header, "
        "convert between edge-list/METIS/.csrg, or partition a .csrg "
        "into a shard bundle for out-of-core execution",
    )
    graph.add_argument(
        "--workload", default=None, help="named workload to build (build)"
    )
    graph.add_argument(
        "--workload-param",
        action=_WorkloadParam,
        metavar="KEY=VALUE",
        default=None,
        help="workload generator parameter (repeatable, build)",
    )
    graph.add_argument(
        "--seed", type=int, default=0, help="workload seed (build)"
    )
    graph.add_argument(
        "--graph",
        default=None,
        help=".csrg file to inspect (info) or partition (partition)",
    )
    graph.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="number of contiguous id-range shards (partition)",
    )
    graph.add_argument(
        "--in",
        dest="input",
        default=None,
        help="source file: .csrg, .metis/.graph, or edge list (convert)",
    )
    graph.add_argument(
        "--out",
        default=None,
        help="destination: .csrg target for build, .csrg or edge list "
        "for convert, bundle directory for partition",
    )
    graph.set_defaults(func=cmd_graph)

    workloads = sub.add_parser(
        "workloads", help="list the declarative workload registry"
    )
    workloads.add_argument(
        "--family", default=None, help="filter by family name prefix"
    )
    workloads.add_argument(
        "--json", action="store_true", help="emit machine-readable spec JSON"
    )
    workloads.add_argument("-v", "--verbose", action="store_true")
    workloads.set_defaults(func=cmd_workloads)

    query = sub.add_parser(
        "query", help="filter and print rows of an experiment store"
    )
    query.add_argument("--store", required=True, help="experiment store path")
    query.add_argument("--algorithm", default=None)
    query.add_argument("--family", default=None, help="algorithm family")
    query.add_argument("--workload", default=None)
    query.add_argument(
        "--engine", dest="query_engine", default=None, help="filter by engine"
    )
    query.add_argument("--seed", type=int, default=None)
    query.add_argument("--kind", default=None, help="output kind filter")
    query.add_argument(
        "--no-errors", action="store_true", help="exclude errored cells"
    )
    query.add_argument(
        "--verdict",
        choices=("ok", "fail", "skip", "error"),
        default=None,
        help="filter by verification verdict",
    )
    query.add_argument(
        "--unverified",
        action="store_true",
        help="only rows without a verdict (pre-migration rows, "
        "verify-disabled campaigns) — the `repro verify` work queue",
    )
    query.add_argument(
        "--format",
        choices=("table", "json", "markdown"),
        default="table",
        help="json is deterministic (stable columns, sorted keys) — "
        "use it for resume/diff comparisons",
    )
    query.add_argument(
        "--slowest",
        type=_positive_int,
        default=None,
        metavar="N",
        help="print the N slowest stored cells ranked by the wall_ms column "
        "(consistent across schema versions; v3 metrics compute_ms shown "
        "as per-line detail) instead of a row dump",
    )
    query.add_argument("--out", help="write the result to a file")
    query.set_defaults(func=cmd_query)

    stats = sub.add_parser(
        "stats",
        help="aggregate stored per-cell metrics: slowest cells, fallback "
        "counters, cache-hit rate, per-algorithm distributions",
    )
    stats.add_argument("--store", required=True, help="experiment store path")
    stats.add_argument("--algorithm", default=None, help="filter rows")
    stats.add_argument("--workload", default=None, help="filter rows")
    stats.add_argument(
        "--engine", dest="query_engine", default=None, help="filter rows"
    )
    stats.add_argument(
        "--top",
        type=_positive_int,
        default=5,
        help="how many slowest cells to list (default 5)",
    )
    stats.set_defaults(func=cmd_stats)

    report = sub.add_parser(
        "report",
        help="render the campaign report (frontier vs palette bounds, "
        "verdict ledger, bench history, breakdowns) as self-contained "
        "HTML / markdown / CSV",
    )
    report.add_argument("--store", required=True, help="experiment store path")
    report.add_argument(
        "--out", default="report", help="output directory (default: report/)"
    )
    report.add_argument(
        "--format",
        choices=("html", "md", "csv", "all"),
        default="all",
        help="which rendering(s) to write (default: all)",
    )
    report.add_argument(
        "--bench-dir",
        default=".",
        help="directory holding the BENCH_*.json history (default: .)",
    )
    report.add_argument(
        "--trace",
        default=None,
        help="JSONL trace file to embed as the span-timeline figure",
    )
    report.add_argument(
        "--timestamp",
        default=None,
        help="inject the generation timestamp — same store + same "
        "timestamp renders byte-identically (CI byte-compares this)",
    )
    report.set_defaults(func=cmd_report)

    trace = sub.add_parser(
        "trace",
        help="inspect a JSONL trace file written by --trace / REPRO_TRACE",
    )
    trace.add_argument(
        "action", choices=("show", "validate"),
        help="show renders the per-process timeline; validate checks "
        "every line against the event schema",
    )
    trace.add_argument("file", help="JSONL trace file")
    trace.add_argument(
        "--max-events",
        type=_positive_int,
        default=200,
        help="events rendered per process before truncating (show)",
    )
    trace.add_argument(
        "--name",
        default=None,
        help="only render events whose name starts with this prefix, "
        "e.g. engine. or kernel. (show)",
    )
    trace.set_defaults(func=cmd_trace)

    gc = sub.add_parser(
        "gc", help="drop unreachable experiment-store rows"
    )
    gc.add_argument("--store", required=True, help="experiment store path")
    gc.add_argument(
        "--all-versions",
        action="store_true",
        help="keep rows from other code versions (only drop errors)",
    )
    gc.add_argument(
        "--keep-errors", action="store_true", help="keep errored cells"
    )
    gc.add_argument(
        "--failed",
        action="store_true",
        help="also drop rows whose verification verdict is 'fail' "
        "(the next campaign recomputes them)",
    )
    gc.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    gc.set_defaults(func=cmd_gc)

    verify = sub.add_parser(
        "verify",
        help="re-check stored rows against recomputation and run "
        "differential cross-engine checks",
    )
    verify.add_argument(
        "--store", default=None, help="experiment store to re-verify"
    )
    verify.add_argument("--algorithm", default=None, help="filter rows")
    verify.add_argument("--workload", default=None, help="filter rows")
    verify.add_argument(
        "--engine", dest="query_engine", default=None, help="filter rows"
    )
    verify.add_argument("--seed", type=int, default=None, help="filter rows")
    verify.add_argument(
        "--unverified",
        action="store_true",
        help="only re-check rows without a verdict",
    )
    verify.add_argument(
        "--all-versions",
        action="store_true",
        help="also re-check rows recorded by other code versions",
    )
    verify.add_argument(
        "--limit", type=_positive_int, default=None, help="re-check at most N rows"
    )
    verify.add_argument(
        "--dry-run",
        action="store_true",
        help="report flagged rows without updating stored verdicts",
    )
    verify.add_argument(
        "--diff",
        action="store_true",
        help="run the differential sample: each cell executed under every "
        "engine, runs compared field by field (includes a size-reduced "
        "scale-family instance)",
    )
    verify.add_argument(
        "--algorithms",
        type=_str_list,
        default=None,
        help="restrict --diff to these algorithms (comma-separated)",
    )
    verify.add_argument(
        "--workloads",
        type=_str_list,
        default=None,
        help="restrict --diff to these workloads (comma-separated)",
    )
    verify.add_argument("-v", "--verbose", action="store_true")
    verify.set_defaults(func=cmd_verify)

    check = sub.add_parser(
        "check",
        help="static-analysis pass: determinism, registry contracts, "
        "hot-path purity, exception hygiene, schema freeze, fork safety",
    )
    check.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    check.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable; see --list)",
    )
    check.add_argument(
        "--list", action="store_true", help="list the rule catalogue and exit"
    )
    check.add_argument(
        "--root",
        default=None,
        help="checkout to scan (default: the repo this package runs from)",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="refresh checks/schema_baseline.json from the current tree "
        "before checking (commit the result together with the version bump)",
    )
    check.set_defaults(func=cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
