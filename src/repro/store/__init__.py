"""Experiment store: a content-addressed, resumable run cache.

Public surface:

* :class:`~repro.store.store.ExperimentStore` — SQLite-backed (WAL mode)
  persistence for campaign cells: per-cell colors/rounds/wall-clock plus
  verification verdicts (and message counts for runners that export
  ``extra['messages']``; the column is NULL otherwise), keyed by
  content-addressed run keys, with a filterable
  :meth:`~repro.store.store.ExperimentStore.query` API and
  :meth:`~repro.store.store.ExperimentStore.gc`.
* :class:`~repro.store.cache.RunCache` — the front-end
  :class:`~repro.analysis.campaign.CampaignRunner` consults so cache hits
  short-circuit the process pool and killed campaigns resume where they
  stopped.
* :func:`~repro.store.keys.run_key` — ``sha256`` over the canonical JSON
  of ``(algorithm, params, workload instance, seed, engine,
  code_version)``.
"""

from repro.store.cache import RunCache
from repro.store.keys import canonical_json, run_key
from repro.store.store import STABLE_COLUMNS, ExperimentStore, stable_row

__all__ = [
    "ExperimentStore",
    "RunCache",
    "STABLE_COLUMNS",
    "canonical_json",
    "run_key",
    "stable_row",
]
