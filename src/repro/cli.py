"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``info --graph FILE`` — structural parameters (n, m, Delta, arboricity
  bounds, degeneracy) of an edge-list graph.
* ``algorithms`` — the unified algorithm registry: every runnable
  algorithm with its family, kind, color bound and parameters.
* ``run`` — run any registered algorithm on a graph file or a named
  workload; ``--seeds`` + ``--jobs`` fan a seed batch across processes,
  ``--engine`` picks the execution engine.
* ``color --graph FILE --algorithm NAME`` — the original edge-coloring
  front-end (kept for compatibility; now registry-resolved).
* ``sweep`` — a Delta ladder for one algorithm across random regular
  graphs, with per-point engine/jobs control.
* ``campaign`` — ``run``/``check`` persist and diff the table-reproduction
  record grid; ``cells`` fans the (algorithm x workload x seed) cell grid
  across a process pool and saves structured JSON.
* ``tables`` / ``figures`` / ``experiments`` — the paper-reproduction
  harnesses.

Engine selection (``--engine {reference,vector}``) routes every simulated
round through :mod:`repro.engine`; ``--jobs N`` parallelizes across worker
processes wherever the subcommand has more than one unit of work.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro import io as repro_io
from repro import registry
from repro.analysis.verify import verify_edge_coloring, verify_vertex_coloring
from repro.engine import available_engines, use_engine
from repro.graphs.properties import arboricity_bounds, degeneracy, max_degree

#: Edge-coloring algorithms exposed by ``color`` (registry-resolved; kept
#: as a module constant for backwards compatibility).
EDGE_ALGORITHMS = tuple(registry.names(kind="edge-coloring"))


def _algorithm_params(spec: registry.AlgorithmSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """Map recognized CLI flags onto the parameters the algorithm accepts."""
    params: Dict[str, Any] = {}
    if "x" in spec.params and getattr(args, "x", None) is not None:
        params["x"] = args.x
    if "arboricity" in spec.params and getattr(args, "arboricity", None) is not None:
        params["arboricity"] = args.arboricity
    if "seed" in spec.params and getattr(args, "algo_seed", None) is not None:
        params["seed"] = args.algo_seed
    return params


def _verify_run(graph, run: registry.AlgorithmRun) -> None:
    if run.kind == "edge-coloring":
        verify_edge_coloring(graph, run.coloring)
    elif run.kind == "vertex-coloring":
        verify_vertex_coloring(graph, run.coloring)


def cmd_info(args: argparse.Namespace) -> int:
    graph = repro_io.read_edge_list(args.graph)
    bounds = arboricity_bounds(graph)
    print(f"n          = {graph.number_of_nodes()}")
    print(f"m          = {graph.number_of_edges()}")
    print(f"Delta      = {max_degree(graph)}")
    print(f"degeneracy = {degeneracy(graph)}")
    print(f"arboricity in [{bounds.lower}, {bounds.upper}]")
    return 0


def cmd_algorithms(args: argparse.Namespace) -> int:
    specs = registry.specs(family=args.family, kind=args.kind)
    if not specs:
        print("no algorithms match the filter")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        params = f" params: {', '.join(spec.params)}" if spec.params else ""
        requires = f" requires: {', '.join(spec.requires)}" if spec.requires else ""
        print(
            f"{spec.name:<{width}}  [{spec.family}/{spec.kind}] "
            f"{spec.color_bound} colors, {spec.rounds_bound}{params}{requires}"
        )
        if args.verbose:
            print(f"{'':<{width}}  {spec.summary}")
    return 0


def cmd_color(args: argparse.Namespace) -> int:
    graph = repro_io.read_edge_list(args.graph)
    spec = registry.get(args.algorithm)
    params = _algorithm_params(spec, args)
    run = registry.run(args.algorithm, graph, engine=args.engine, **params)
    _verify_run(graph, run)
    delta = max_degree(graph)
    print(f"algorithm      = {args.algorithm}")
    print(f"Delta          = {delta}")
    print(f"colors         = {run.colors_used}")
    if run.rounds_actual is not None:
        print(f"rounds         = {run.rounds_actual:.0f}")
    if run.rounds_modeled is not None:
        print(f"rounds modeled = {run.rounds_modeled:.0f}")
    if args.output:
        repro_io.save_edge_coloring(run.coloring, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        CampaignCell,
        CampaignRunner,
        build_workload,
        workload_names,
    )

    spec = registry.get(args.algorithm)
    params = _algorithm_params(spec, args)

    if args.graph:
        graph = repro_io.read_edge_list(args.graph)
        run = registry.run(args.algorithm, graph, engine=args.engine, **params)
        _verify_run(graph, run)
        rows = [
            {
                "algorithm": args.algorithm,
                "workload": args.graph,
                "seed": None,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "colors_used": run.colors_used,
                "rounds_actual": run.rounds_actual,
                "rounds_modeled": run.rounds_modeled,
                "engine": args.engine,
                "error": None,
            }
        ]
    else:
        if args.workload not in workload_names():
            raise SystemExit(
                f"unknown workload {args.workload!r}; choose from {workload_names()}"
            )
        workload_params = dict(args.workload_param or ())
        seeds = args.seeds
        cells = [
            CampaignCell(
                algorithm=args.algorithm,
                workload=args.workload,
                workload_params=workload_params,
                seed=seed,
                algo_params=params,
            )
            for seed in seeds
        ]
        rows = CampaignRunner(cells, engine=args.engine, jobs=args.jobs).run()

    failures = 0
    for row in rows:
        if row["error"]:
            failures += 1
            print(f"FAILED seed={row['seed']}: {row['error']}")
            continue
        rounds = (
            f" rounds={row['rounds_actual']:.0f}"
            if row.get("rounds_actual") is not None
            else ""
        )
        wall = f" wall={row['wall_ms']:.1f}ms" if "wall_ms" in row else ""
        seed = f" seed={row['seed']}" if row["seed"] is not None else ""
        print(
            f"{args.algorithm} on {row['workload']}{seed}: "
            f"n={row['n']} m={row['m']} colors={row['colors_used']}{rounds}{wall}"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=1)
        print(f"wrote {args.out}")
    return 1 if failures else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import CampaignCell, CampaignRunner

    spec = registry.get(args.algorithm)
    params = _algorithm_params(spec, args)
    cells = []
    for delta in args.deltas:
        nodes = args.n if (args.n * delta) % 2 == 0 else args.n + 1
        cells.append(
            CampaignCell(
                algorithm=args.algorithm,
                workload="random-regular",
                workload_params={"n": nodes, "d": delta},
                seed=args.seed,
                algo_params=params,
            )
        )
    rows = CampaignRunner(cells, engine=args.engine, jobs=args.jobs).run()
    print(f"# {args.algorithm} Delta sweep (engine={args.engine or 'default'})")
    print("| Delta | n | m | colors | rounds | modeled | wall_ms |")
    print("|---|---|---|---|---|---|---|")
    failures = 0
    for delta, row in zip(args.deltas, rows):
        if row["error"]:
            failures += 1
            print(f"| {delta} | FAILED: {row['error']} |")
            continue
        actual = (
            f"{row['rounds_actual']:.0f}" if row.get("rounds_actual") is not None else "—"
        )
        modeled = (
            f"{row['rounds_modeled']:.0f}" if row.get("rounds_modeled") is not None else "—"
        )
        print(
            f"| {delta} | {row['n']} | {row['m']} | {row['colors_used']} "
            f"| {actual} | {modeled} | {row['wall_ms']:.1f} |"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=1)
        print(f"wrote {args.out}")
    return 1 if failures else 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import main as tables_main

    with use_engine(args.engine):
        tables_main()
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import main as figures_main

    figures_main()
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import main as experiments_main

    with use_engine(args.engine):
        experiments_main([args.output] if args.output else [])
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import (
        CampaignRunner,
        compare_campaigns,
        default_cells,
        default_grid,
        load_campaign,
        save_campaign,
        save_cell_results,
    )

    if args.action == "cells":
        if not args.out:
            raise SystemExit("campaign cells requires --out")
        cells = default_cells()
        results = CampaignRunner(cells, engine=args.engine, jobs=args.jobs).run()
        save_cell_results(results, args.out)
        failed = [r for r in results if r["error"]]
        print(
            f"saved {len(results)} cell results to {args.out} "
            f"({len(failed)} failed)"
        )
        for row in failed:
            print(f"FAILED {row['algorithm']} on {row['workload']}: {row['error']}")
        return 1 if failed else 0

    with use_engine(args.engine):
        records = default_grid()
    if args.action == "run":
        if not args.out:
            raise SystemExit("campaign run requires --out")
        save_campaign(records, args.out)
        print(f"saved {len(records)} records to {args.out}")
        return 0
    if not args.baseline:
        raise SystemExit("campaign check requires --baseline")
    baseline = load_campaign(args.baseline)
    regressions = compare_campaigns(baseline, records)
    if regressions:
        for regression in regressions:
            print(f"REGRESSION {regression}")
        return 1
    print(f"no regressions across {len(records)} records")
    return 0


class _WorkloadParam(argparse.Action):
    """Parse repeated ``--workload-param key=value`` pairs (ints when they
    look like ints, floats when they look like floats)."""

    def __call__(self, parser, namespace, values, option_string=None):
        key, _, raw = values.partition("=")
        if not key or not raw:
            raise argparse.ArgumentError(self, f"expected key=value, got {values!r}")
        value: Any = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        existing = list(getattr(namespace, self.dest) or [])
        existing.append((key, value))
        setattr(namespace, self.dest, existing)


def _int_list(raw: str) -> List[int]:
    try:
        values = [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {raw!r}")
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}")
    return value


def _add_engine_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="execution engine for every simulated round (default: reference; "
        "vector is the CSR/event-driven engine, identical results, faster at scale)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for multi-cell work (default 1 = inline)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Barenboim-Elkin-Maimon (PODC 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="structural parameters of a graph")
    info.add_argument("--graph", required=True, help="edge-list file")
    info.set_defaults(func=cmd_info)

    algorithms = sub.add_parser(
        "algorithms", help="list the unified algorithm registry"
    )
    algorithms.add_argument("--family", choices=registry.FAMILIES, default=None)
    algorithms.add_argument("--kind", choices=registry.KINDS, default=None)
    algorithms.add_argument("-v", "--verbose", action="store_true")
    algorithms.set_defaults(func=cmd_algorithms)

    run = sub.add_parser(
        "run",
        help="run any registered algorithm on a graph file or named workload",
    )
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="edge-list file")
    source.add_argument("--workload", help="named workload generator")
    run.add_argument(
        "--workload-param",
        action=_WorkloadParam,
        metavar="KEY=VALUE",
        default=None,
        help="workload generator parameter (repeatable), e.g. --workload-param n=96",
    )
    run.add_argument("--algorithm", required=True, choices=registry.names())
    run.add_argument("--x", type=int, default=None, help="recursion depth")
    run.add_argument("--arboricity", type=int, default=None, help="arboricity bound")
    run.add_argument("--algo-seed", type=int, default=None, help="algorithm RNG seed")
    run.add_argument(
        "--seeds",
        type=_int_list,
        default=[0],
        help="comma-separated workload seeds (each is one cell), e.g. 0,1,2,3",
    )
    run.add_argument("--out", help="write structured JSON results")
    _add_engine_jobs(run)
    run.set_defaults(func=cmd_run)

    color = sub.add_parser("color", help="edge-color a graph")
    color.add_argument("--graph", required=True, help="edge-list file")
    color.add_argument("--algorithm", default="star4", choices=EDGE_ALGORITHMS)
    color.add_argument("--x", type=int, default=1, help="recursion depth")
    color.add_argument("--output", help="write the coloring as JSON")
    color.add_argument("--engine", choices=available_engines(), default=None)
    color.set_defaults(func=cmd_color)

    sweep = sub.add_parser(
        "sweep", help="Delta ladder for one algorithm on random regular graphs"
    )
    sweep.add_argument("--algorithm", default="star", choices=registry.names())
    sweep.add_argument(
        "--deltas", type=_int_list, default=[8, 16, 24], help="comma-separated degrees"
    )
    sweep.add_argument("--n", type=int, default=80, help="vertices per point")
    sweep.add_argument("--seed", type=int, default=5, help="workload seed")
    sweep.add_argument("--x", type=int, default=None, help="recursion depth")
    sweep.add_argument("--arboricity", type=int, default=None)
    sweep.add_argument("--out", help="write structured JSON results")
    _add_engine_jobs(sweep)
    sweep.set_defaults(func=cmd_sweep)

    tables = sub.add_parser("tables", help="print the table reproductions")
    tables.add_argument("--engine", choices=available_engines(), default=None)
    tables.set_defaults(func=cmd_tables)

    figures = sub.add_parser("figures", help="print the figure bound checks")
    figures.set_defaults(func=cmd_figures)

    experiments = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    experiments.add_argument("output", nargs="?", help="output path")
    experiments.add_argument("--engine", choices=available_engines(), default=None)
    experiments.set_defaults(func=cmd_experiments)

    campaign = sub.add_parser(
        "campaign", help="run/compare persisted experiment campaigns"
    )
    campaign.add_argument(
        "action",
        choices=("run", "check", "cells"),
        help="run/check the record grid, or fan the cell grid across --jobs",
    )
    campaign.add_argument("--out", help="where to save the campaign (run/cells)")
    campaign.add_argument("--baseline", help="baseline file to compare against (check)")
    _add_engine_jobs(campaign)
    campaign.set_defaults(func=cmd_campaign)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
