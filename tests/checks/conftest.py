"""Fixtures for the static-analysis suite: throwaway scannable trees.

``make_project`` builds a minimal checkout (``root/src/repro/...``) from
a ``{package_relative_path: source}`` mapping, so every rule test plants
exactly the code shape it is about and nothing else. ``run_checks`` on
such a mini-tree exercises the same discovery/parse/dispatch path as the
full repo scan.
"""

import textwrap

import pytest


@pytest.fixture
def make_project(tmp_path):
    def _make(files, outside=None):
        root = tmp_path / "proj"
        pkg = root / "src" / "repro"
        pkg.mkdir(parents=True, exist_ok=True)
        for pkg_rel, source in files.items():
            path = pkg / pkg_rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        for rel, source in (outside or {}).items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return root

    return _make
