"""Tests for the command-line interface."""

import networkx as nx
import pytest

from repro import io as repro_io
from repro.cli import EDGE_ALGORITHMS, main
from repro.graphs import random_regular


@pytest.fixture
def graph_file(tmp_path):
    g = random_regular(16, 4, seed=1)
    path = tmp_path / "g.edges"
    repro_io.write_edge_list(g, path)
    return path


class TestInfo:
    def test_prints_parameters(self, graph_file, capsys):
        assert main(["info", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "n          = 16" in out
        assert "Delta      = 4" in out
        assert "arboricity" in out


class TestColor:
    @pytest.mark.parametrize("algorithm", ["star4", "vizing", "greedy", "forest"])
    def test_algorithms_run(self, graph_file, capsys, algorithm):
        assert main(["color", "--graph", str(graph_file), "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "colors" in out

    def test_writes_output(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "coloring.json"
        assert (
            main(
                [
                    "color",
                    "--graph",
                    str(graph_file),
                    "--algorithm",
                    "greedy",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        coloring = repro_io.load_edge_coloring(out_path)
        graph = repro_io.read_edge_list(graph_file)
        assert len(coloring) == graph.number_of_edges()

    def test_x_parameter(self, graph_file, capsys):
        assert (
            main(["color", "--graph", str(graph_file), "--algorithm", "star", "--x", "2"])
            == 0
        )

    def test_all_algorithms_are_wired(self, graph_file, capsys):
        for algorithm in EDGE_ALGORITHMS:
            assert (
                main(["color", "--graph", str(graph_file), "--algorithm", algorithm])
                == 0
            ), algorithm


class TestFigures:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure-1-clique-connector" in out
        assert "OK" in out


class TestWorkloadsCommand:
    def test_lists_registry(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "random-regular" in out and "power-law" in out
        assert "[arboricity" in out

    def test_family_filter(self, capsys):
        assert main(["workloads", "--family", "adversarial"]) == 0
        out = capsys.readouterr().out
        assert "shared-cliques" in out and "random-regular" not in out

    def test_no_match(self, capsys):
        assert main(["workloads", "--family", "imaginary"]) == 1

    def test_json_output(self, capsys):
        import json

        assert main(["workloads", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {spec["name"]: spec for spec in payload}
        assert by_name["random-regular"]["defaults"] == {"n": 64, "d": 8}
        assert by_name["torus"]["seeded"] is False


class TestEngineJobsDefaults:
    def test_unknown_engine_is_actionable(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithm", "greedy", "--engine", "warp-drive"])
        err = capsys.readouterr().err
        assert "unknown engine 'warp-drive'" in err
        assert "reference" in err and "vector" in err

    def test_jobs_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithm", "greedy", "--jobs", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_jobs_defaults_to_cpu_count(self):
        import os

        from repro.cli import _resolve_jobs, build_parser

        args = build_parser().parse_args(["sweep", "--algorithm", "greedy"])
        assert args.jobs is None
        assert _resolve_jobs(args) == max(1, os.cpu_count() or 1)
        args = build_parser().parse_args(
            ["sweep", "--algorithm", "greedy", "--jobs", "3"]
        )
        assert _resolve_jobs(args) == 3
