"""Hypergraphs and their line graphs (bounded-diversity instances).

The paper's flagship family of bounded-diversity graphs beyond line graphs
is the line graph of a c-uniform hypergraph: vertices are hyperedges, two
hyperedges are adjacent when they intersect, and each original vertex
identifies the clique of hyperedges containing it — so the diversity is at
most ``c`` and the maximum identified clique size is the maximum vertex
degree of the hypergraph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.errors import InvalidParameterError
from repro.graphs.cliques import CliqueCover
from repro.types import NodeId


@dataclass(frozen=True)
class Hypergraph:
    """An undirected hypergraph with hashable vertices.

    ``edges`` are frozensets of vertices; duplicate hyperedges are not
    allowed (they would be twin vertices in the line graph and are never
    produced by our generators).
    """

    vertices: Tuple[NodeId, ...]
    edges: Tuple[FrozenSet[NodeId], ...]

    @staticmethod
    def from_edges(edges: Iterable[Iterable[NodeId]]) -> "Hypergraph":
        edge_sets: List[FrozenSet[NodeId]] = []
        seen = set()
        vertices = set()
        for e in edges:
            fe = frozenset(e)
            if not fe:
                raise InvalidParameterError("empty hyperedge")
            if fe in seen:
                raise InvalidParameterError(f"duplicate hyperedge {sorted(fe, key=repr)!r}")
            seen.add(fe)
            edge_sets.append(fe)
            vertices |= fe
        return Hypergraph(
            vertices=tuple(sorted(vertices, key=repr)), edges=tuple(edge_sets)
        )

    @property
    def uniformity(self) -> int:
        """Rank if uniform, else the maximum hyperedge size."""
        return max((len(e) for e in self.edges), default=0)

    def is_uniform(self) -> bool:
        sizes = {len(e) for e in self.edges}
        return len(sizes) <= 1

    def vertex_degree(self, v: NodeId) -> int:
        return sum(1 for e in self.edges if v in e)

    def max_vertex_degree(self) -> int:
        degree: Dict[NodeId, int] = {}
        for e in self.edges:
            for v in e:
                degree[v] = degree.get(v, 0) + 1
        return max(degree.values(), default=0)

    def line_graph_with_cover(self) -> Tuple[nx.Graph, CliqueCover]:
        """The line graph over hyperedge indices plus the per-vertex cover.

        Returns a graph whose nodes are ``0..len(edges)-1`` and a cover with
        one clique per hypergraph vertex (the indices of hyperedges that
        contain it); the cover's diversity is at most the uniformity and the
        clique size is the maximum vertex degree.
        """
        line = nx.Graph()
        line.add_nodes_from(range(len(self.edges)))
        incidence: Dict[NodeId, List[int]] = {}
        for idx, e in enumerate(self.edges):
            for v in e:
                incidence.setdefault(v, []).append(idx)
        cliques = []
        for v, idxs in sorted(incidence.items(), key=lambda kv: repr(kv[0])):
            cliques.append(idxs)
            for i, a in enumerate(idxs):
                for b in idxs[i + 1 :]:
                    line.add_edge(a, b)
        return line, CliqueCover.from_cliques(cliques)


def random_uniform_hypergraph(
    n: int, num_edges: int, c: int, seed: int = 0
) -> Hypergraph:
    """A random c-uniform hypergraph on ``n`` vertices with ``num_edges``
    distinct hyperedges, drawn without replacement (deterministic per seed).
    """
    if c < 2:
        raise InvalidParameterError("uniformity c must be >= 2")
    if n < c:
        raise InvalidParameterError("need at least c vertices")
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    limit = 50 * max(num_edges, 1) + 100
    while len(edges) < num_edges:
        attempts += 1
        if attempts > limit:
            raise InvalidParameterError(
                f"could not draw {num_edges} distinct {c}-uniform edges on {n} vertices"
            )
        edges.add(frozenset(rng.sample(range(n), c)))
    return Hypergraph.from_edges(sorted(edges, key=lambda e: sorted(e)))


def regular_partite_hypergraph(groups: int, group_size: int, c: int) -> Hypergraph:
    """A structured c-uniform hypergraph: vertices arranged in ``groups``
    columns of ``group_size`` rows; each hyperedge picks one vertex from each
    of ``c`` consecutive columns in the same row pattern. Produces line graphs
    with predictable clique sizes, useful in tests."""
    if c < 2 or groups < c:
        raise InvalidParameterError("need groups >= c >= 2")
    edges = []
    for start in range(groups - c + 1):
        for row in range(group_size):
            edges.append(
                frozenset((col, (row + col) % group_size) for col in range(start, start + c))
            )
    return Hypergraph.from_edges(edges)
