"""Per-algorithm round programs for sharded execution.

A program splits one whole-run kernel (PR 6) into a coordinator half and
a worker half so the identical computation runs one shard at a time:

* the **coordinator** half plans the run from globally known inputs (the
  bundle manifest plus the algorithm extras), decides after every
  bulk-synchronous round whether to continue, reproduces the kernel's
  closed-form round/message accounting, and re-raises the kernel's
  authentic errors — same type, same message — from the per-shard stats.
* the **worker** half holds the per-shard state (a dict of numpy arrays,
  which is also the checkpoint payload) and executes one array pass per
  round over the local CSR slice, mirroring the kernel line by line with
  the node set restricted to the owned range. Foreign neighbor state
  arrives as the halo values of the preceding exchange.

The contract is bit-identity: for every input where the unsharded kernel
produces ``RunResult(r, m, outputs, ...)``, the sharded program produces
the same result (the parity suite in ``tests/shard`` is the gate), and
for every input the kernel raises on, the program raises the same
exception. Inputs a kernel would *decline* (``KernelUnsupported``) make
the program raise :class:`ShardFallback` instead, and the runtime routes
the run to the ordinary engine path — disclosed, never silent.

Worker-side errors that the per-node semantics define (an uncovered
evaluation point in Linial's refinement) are reported through the round
stats, not raised in the worker: the coordinator reduces the reports
(first failing node in global id order, exactly like the kernel's
``np.flatnonzero(undecided)[0]``) and raises from its own frame so the
caller sees one authentic exception, not a pool plumbing error.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ColoringError, RoundLimitExceeded
from repro.kernels import KernelUnsupported
from repro.kernels.linial import _check_encodable, _digit_planes, _eval_point
from repro.kernels.segments import dense_int_table, require_int
from repro.local.network import RunResult
from repro.shard.partition import Shard


class ShardFallback(Exception):
    """The program declines this input; run it through the normal engine
    path instead. The message is a stable short string usable as a
    counter label (mirrors ``KernelUnsupported``)."""


def _local_endpoints(shard: Shard) -> Tuple[np.ndarray, np.ndarray]:
    """Directed local edges of the owned rows: sources are owned local
    ids, destinations may be owned or halo local ids."""
    indptr = np.asarray(shard.indptr)
    src = np.repeat(np.arange(shard.n_own, dtype=np.int64), np.diff(indptr))
    dst = np.asarray(shard.indices, dtype=np.int64)
    return src, dst


class ShardProgram:
    """Protocol base. Coordinator methods take/return JSON-able ``acc``
    state inside ``plan`` (plus numpy planning arrays that are
    reconstructed deterministically on resume); worker methods exchange
    dict-of-ndarray state, which is the npz checkpoint payload."""

    name: str = ""

    # ---- coordinator half -------------------------------------------------
    def plan(
        self, manifest: Dict[str, Any], extras: Dict[str, Any], max_rounds: int
    ) -> Tuple[Dict[str, Any], Optional[RunResult]]:
        raise NotImplementedError

    def init_payload(self, plan: Dict[str, Any], shard: Shard) -> Dict[str, Any]:
        raise NotImplementedError

    def next_action(
        self, plan: Dict[str, Any], completed: int, stats: List[Dict[str, Any]]
    ) -> Optional[Any]:
        raise NotImplementedError

    def result(
        self, plan: Dict[str, Any], outputs: np.ndarray, manifest: Dict[str, Any]
    ) -> RunResult:
        raise NotImplementedError

    def fingerprint(self, plan: Dict[str, Any]) -> str:
        import hashlib

        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(repr(plan.get("print_key", "")).encode())
        for arr in plan.get("print_arrays", ()):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    # ---- worker half ------------------------------------------------------
    def init_state(
        self, shard: Shard, payload: Dict[str, Any]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        raise NotImplementedError

    def boundary(self, shard: Shard, state: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def step(
        self,
        shard: Shard,
        state: Dict[str, np.ndarray],
        halo_vals: np.ndarray,
        arg: Any,
    ) -> Dict[str, Any]:
        raise NotImplementedError

    def finalize(self, shard: Shard, state: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError


class LinialProgram(ShardProgram):
    """Sharded twin of :func:`repro.kernels.linial.linial_kernel`: the
    schedule is a pure function of ``(m0, Delta)`` — both in the manifest
    or extras — so the coordinator plans every round up front; each round
    is one cover-free refinement pass per shard with the halo colors from
    the preceding exchange."""

    name = "linial"

    def plan(self, manifest, extras, max_rounds):
        from repro.substrates.linial import linial_schedule

        if "initial_coloring" not in extras or "m0" not in extras:
            raise ShardFallback("missing linial extras")
        n = int(manifest["n"])
        if n == 0:
            return {}, RunResult(rounds=0, messages=0, outputs={}, round_messages=[])
        colors = dense_int_table(extras["initial_coloring"], n)
        m0 = require_int(extras["m0"])
        schedule, _ = linial_schedule(m0, int(manifest["max_degree"]))
        if not schedule:
            outputs = dict(enumerate(colors.tolist()))
            return {}, RunResult(
                rounds=0, messages=0, outputs=outputs, round_messages=[]
            )
        if len(schedule) > max_rounds:
            raise RoundLimitExceeded(max_rounds, n)
        try:
            _check_encodable(colors, schedule[0].q, schedule[0].d)
        except KernelUnsupported as exc:
            raise ShardFallback(str(exc))
        plan = {
            "schedule": [[int(step.q), int(step.d)] for step in schedule],
            "colors": colors,
            "acc": {},
            "print_key": (m0, int(manifest["max_degree"])),
            "print_arrays": (colors,),
        }
        return plan, None

    def init_payload(self, plan, shard):
        colors = plan["colors"]
        return {
            "own": colors[shard.lo : shard.hi],
            "halo": colors[np.asarray(shard.halo)],
        }

    def next_action(self, plan, completed, stats):
        undecided = [tuple(s["undecided"]) for s in stats if s.get("undecided")]
        if undecided:
            # the kernel reports the first undecided node in global id
            # order; with contiguous ranges that is the minimum over the
            # shards' first-undecided reports.
            _gid, degree = min(undecided)
            q, d = plan["schedule"][completed - 1]
            raise ColoringError(
                "cover-free refinement failed: no uncovered evaluation point "
                f"(q={q}, d={d}, degree={degree})"
            )
        if completed < len(plan["schedule"]):
            return list(plan["schedule"][completed])
        return None

    def result(self, plan, outputs, manifest):
        rounds = len(plan["schedule"])
        per_round = 2 * int(manifest["m"])
        return RunResult(
            rounds=rounds,
            messages=per_round * rounds,
            outputs=dict(enumerate(outputs.tolist())),
            round_messages=[per_round] * rounds,
        )

    def init_state(self, shard, payload):
        colors = np.concatenate(
            [
                np.asarray(payload["own"], dtype=np.int64),
                np.asarray(payload["halo"], dtype=np.int64),
            ]
        )
        return {"colors": colors}, {}

    def boundary(self, shard, state):
        return state["colors"][np.asarray(shard.boundary)]

    def step(self, shard, state, halo_vals, arg):
        q, d = int(arg[0]), int(arg[1])
        colors = state["colors"]
        colors[shard.n_own :] = halo_vals
        n_own = shard.n_own
        # one cover-free refinement restricted to the owned rows — the
        # same passes as ``_refine_round`` with ``covered``/``undecided``
        # indexed by owned local ids (every edge leaving an owned node is
        # present locally, so the cover test sees the full neighborhood).
        planes = _digit_planes(colors, q, d)
        src, dst = _local_endpoints(shard)
        live = colors[src] != colors[dst]
        e_src, e_dst = src[live], dst[live]
        undecided = np.ones(n_own, dtype=bool)
        new_colors = np.empty(n_own, dtype=np.int64)
        for i in range(q):
            vals = _eval_point(planes, i, q)
            covered = np.zeros(n_own, dtype=bool)
            covered[e_src[vals[e_src] == vals[e_dst]]] = True
            pick = undecided & ~covered
            if pick.any():
                new_colors[pick] = i * q + vals[:n_own][pick]
                undecided &= ~pick
                if not undecided.any():
                    break
                keep = undecided[e_src]
                e_src, e_dst = e_src[keep], e_dst[keep]
        stats: Dict[str, Any] = {}
        if undecided.any():
            worst = int(np.flatnonzero(undecided)[0])
            stats["undecided"] = [
                shard.lo + worst,
                int(np.count_nonzero(src == worst)),
            ]
            decided = ~undecided
            colors[:n_own][decided] = new_colors[decided]
        else:
            colors[:n_own] = new_colors
        return stats

    def finalize(self, shard, state):
        return state["colors"][: shard.n_own].copy()


class DefectiveProgram(ShardProgram):
    """Sharded twin of :func:`repro.kernels.linial.defective_kernel`. A
    single evaluation round that only reads the *initial* colors, so the
    halo values ship in the init payload and no exchange is needed: every
    shard scores its owned nodes in ``init_state`` and the coordinator
    stops immediately."""

    name = "defective-refinement"

    def plan(self, manifest, extras, max_rounds):
        if not {"initial_coloring", "q", "d"} <= set(extras):
            raise ShardFallback("missing defective-refinement extras")
        n = int(manifest["n"])
        if n == 0:
            return {}, RunResult(rounds=0, messages=0, outputs={}, round_messages=[])
        q = require_int(extras["q"])
        d = require_int(extras["d"])
        if q < 1 or d < 0:
            raise ShardFallback("degenerate (q, d)")
        colors = dense_int_table(extras["initial_coloring"], n)
        try:
            _check_encodable(colors, q, d)
        except KernelUnsupported as exc:
            raise ShardFallback(str(exc))
        if max_rounds < 1:
            raise RoundLimitExceeded(max_rounds, n)
        plan = {
            "colors": colors,
            "q": q,
            "d": d,
            "acc": {},
            "print_key": (q, d),
            "print_arrays": (colors,),
        }
        return plan, None

    def init_payload(self, plan, shard):
        colors = plan["colors"]
        return {
            "own": colors[shard.lo : shard.hi],
            "halo": colors[np.asarray(shard.halo)],
            "q": plan["q"],
            "d": plan["d"],
        }

    def next_action(self, plan, completed, stats):
        return None

    def result(self, plan, outputs, manifest):
        per_round = 2 * int(manifest["m"])
        return RunResult(
            rounds=1,
            messages=per_round,
            outputs=dict(enumerate(outputs.tolist())),
            round_messages=[per_round],
        )

    def init_state(self, shard, payload):
        q, d = int(payload["q"]), int(payload["d"])
        colors = np.concatenate(
            [
                np.asarray(payload["own"], dtype=np.int64),
                np.asarray(payload["halo"], dtype=np.int64),
            ]
        )
        n_own = shard.n_own
        planes = _digit_planes(colors, q, d)
        src, dst = _local_endpoints(shard)
        best_point = np.zeros(n_own, dtype=np.int64)
        best_count = np.diff(np.asarray(shard.indptr)).astype(np.int64) + 1
        best_val = np.zeros(n_own, dtype=np.int64)
        for i in range(q):
            vals = _eval_point(planes, i, q)
            collisions = np.bincount(
                src[vals[src] == vals[dst]], minlength=n_own
            )
            better = collisions < best_count
            if better.any():
                best_point[better] = i
                best_count[better] = collisions[better]
                best_val[better] = vals[:n_own][better]
        return {"out": best_point * q + best_val}, {}

    def boundary(self, shard, state):
        return state["out"][np.asarray(shard.boundary)]

    def finalize(self, shard, state):
        return state["out"].copy()


class PeelerProgram(ShardProgram):
    """Sharded twin of :func:`repro.kernels.peeling.peeler_kernel`. The
    per-round exchange ships the boundary nodes' just-removed flags; the
    coordinator reduces the shards' alive/sent/newly stats to replicate
    the kernel's termination and round-limit decisions exactly."""

    name = "h-partition"

    def plan(self, manifest, extras, max_rounds):
        if "threshold" not in extras:
            raise ShardFallback("missing threshold")
        threshold = extras["threshold"]
        if type(threshold) not in (int, float):
            raise ShardFallback("non-numeric threshold")
        n = int(manifest["n"])
        if n == 0:
            return {}, RunResult(rounds=0, messages=0, outputs={}, round_messages=[])
        plan = {
            "threshold": threshold,
            "max_rounds": max_rounds,
            "acc": {"rounds": 0, "messages": 0, "round_messages": []},
            "print_key": (threshold, max_rounds),
            "print_arrays": (),
        }
        return plan, None

    def init_payload(self, plan, shard):
        return {"threshold": plan["threshold"]}

    def next_action(self, plan, completed, stats):
        acc = plan["acc"]
        sent = sum(int(s["sent"]) for s in stats)
        alive = sum(int(s["alive"]) for s in stats)
        newly_any = any(s["newly_any"] for s in stats)
        acc["messages"] += sent
        if alive == 0:
            return None
        if acc["rounds"] >= plan["max_rounds"] or not newly_any:
            raise RoundLimitExceeded(plan["max_rounds"], alive)
        acc["rounds"] += 1
        acc["round_messages"].append(sent)
        return acc["rounds"]

    def result(self, plan, outputs, manifest):
        acc = plan["acc"]
        return RunResult(
            rounds=acc["rounds"],
            messages=acc["messages"],
            outputs=dict(enumerate(outputs.tolist())),
            round_messages=list(acc["round_messages"]),
        )

    def init_state(self, shard, payload):
        threshold = payload["threshold"]
        degrees = np.diff(np.asarray(shard.indptr)).astype(np.int64)
        remaining = degrees.copy()
        newly = remaining <= threshold
        level = np.zeros(shard.n_own, dtype=np.int64)
        level[newly] = 1
        alive = ~newly
        state = {
            "level": level,
            "remaining": remaining,
            "newly": newly,
            "alive": alive,
            "degrees": degrees,
            "threshold": np.asarray(threshold),
        }
        return state, self._stats(state)

    @staticmethod
    def _stats(state: Dict[str, np.ndarray]) -> Dict[str, Any]:
        return {
            "sent": int(state["degrees"][state["newly"]].sum()),
            "alive": int(state["alive"].sum()),
            "newly_any": bool(state["newly"].any()),
        }

    def boundary(self, shard, state):
        return state["newly"][np.asarray(shard.boundary)].astype(np.int64)

    def step(self, shard, state, halo_vals, arg):
        # removal announcements land on the reversed edges: for owned
        # node v, the count of neighbors u with newly[u] — identical to
        # the kernel's bincount over (u -> v) because the CSR is
        # symmetric.
        newly_local = np.concatenate(
            [state["newly"], halo_vals.astype(bool)]
        )
        src, dst = _local_endpoints(shard)
        announced = np.bincount(
            src[newly_local[dst]], minlength=shard.n_own
        )
        state["remaining"] -= announced
        newly = state["alive"] & (state["remaining"] <= state["threshold"][()])
        state["level"][newly] = int(arg) + 1
        state["alive"] &= ~newly
        state["newly"] = newly
        return self._stats(state)

    def finalize(self, shard, state):
        return state["level"].copy()


_PROGRAMS: Dict[str, ShardProgram] = {}


def register_program(program: ShardProgram) -> None:
    _PROGRAMS[program.name] = program


def get_program(name: Optional[str]) -> Optional[ShardProgram]:
    """The registered program for algorithm ``name`` (keyed like the
    kernel registry: the :class:`~repro.local.algorithm.NodeAlgorithm`
    name), or None — the runtime then discloses a ``no-program``
    fallback."""
    if name is None:
        return None
    return _PROGRAMS.get(name)


def program_names() -> List[str]:
    return sorted(_PROGRAMS)


register_program(LinialProgram())
register_program(DefectiveProgram())
register_program(PeelerProgram())
