"""The reference engine: the original :class:`~repro.local.network.Network`
scheduler, unchanged.

Every semantic question about the LOCAL simulation is answered by this
engine; ``VectorEngine`` (and any future engine) is validated against it by
the parity suite. It supports the full feature surface — tracers, crash
schedules, bandwidth tracking — at the cost of O(n) bookkeeping per round.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import networkx as nx

from repro import obs
from repro.engine.base import Engine, note_engine_run
from repro.local.algorithm import NodeAlgorithm
from repro.local.network import DEFAULT_MAX_ROUNDS, Network, RunResult
from repro.local.trace import Tracer
from repro.types import NodeId


class ReferenceEngine(Engine):
    """Bit-for-bit the pre-engine ``Network.run`` semantics.

    :class:`~repro.graphcore.CompactGraph` inputs are converted to
    networkx transparently (the reference scheduler is defined over nx
    adjacency), so parity suites can hold the CSR fast path of
    :class:`~repro.engine.vector.VectorEngine` against this engine on the
    *same* compact instance.
    """

    name = "reference"

    def run(
        self,
        graph: nx.Graph,
        algorithm: NodeAlgorithm,
        extras: Optional[Dict[str, Any]] = None,
        max_rounds: Optional[int] = None,
        track_bandwidth: bool = False,
        crashes: Optional[Dict[NodeId, int]] = None,
        tracer: Optional[Tracer] = None,
    ) -> RunResult:
        from repro.graphcore import CompactGraph

        note_engine_run(self.name)
        if isinstance(graph, CompactGraph):
            graph = graph.to_networkx()
        network = Network(graph)
        ctx = network.make_context(**(extras or {}))
        with obs.span("engine.reference.run", algorithm=getattr(algorithm, "name", "?")):
            result = network.run(
                algorithm,
                ctx,
                max_rounds=DEFAULT_MAX_ROUNDS if max_rounds is None else max_rounds,
                track_bandwidth=track_bandwidth,
                crashes=crashes,
                tracer=tracer,
            )
        rt = obs.active()
        if rt is not None:
            # The reference scheduler is opaque per round; its aggregate
            # counters come from the result, and the per-round message
            # profile becomes trace events when a sink is attached.
            rt.incr("engine.runs", engine=self.name)
            rt.incr("engine.rounds", result.rounds, engine=self.name)
            rt.incr("engine.messages", result.messages, engine=self.name)
            if rt.trace is not None:
                for round_no, sent in enumerate(result.round_messages, start=1):
                    rt.emit(
                        "point",
                        "engine.round",
                        engine=self.name,
                        round=round_no,
                        sent=sent,
                    )
        result.engine = self.name
        return result
