"""Consistent clique identification ("clique covers") and diversity.

The paper defines the *diversity* ``D(G)`` as the maximum number of
identified maximal cliques any vertex belongs to, under a *consistent* clique
identification in which the cliques containing a vertex cover all of its
neighbors (Section 1.2, footnote 3). For line graphs the natural
identification assigns each vertex of the original graph a clique (the star
of edges incident on it), giving ``D = 2``; for line graphs of c-uniform
hypergraphs, ``D = c``.

A :class:`CliqueCover` carries that identification explicitly so algorithms
(connector construction, CD-Coloring) never need to solve maximal-clique
problems themselves — exactly as the paper assumes for these graph families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.errors import CliqueCoverError
from repro.types import NodeId


@dataclass(frozen=True)
class CliqueCover:
    """A consistent identification of cliques of a graph.

    Attributes:
        cliques: tuple of vertex-frozensets, each a clique of the graph.
        membership: vertex -> indices (into ``cliques``) of the cliques that
            contain it.
    """

    cliques: Tuple[FrozenSet[NodeId], ...]
    membership: Dict[NodeId, Tuple[int, ...]] = field(hash=False)

    @staticmethod
    def from_cliques(cliques: Iterable[Iterable[NodeId]]) -> "CliqueCover":
        clique_sets = tuple(frozenset(c) for c in cliques if len(frozenset(c)) > 0)
        membership: Dict[NodeId, List[int]] = {}
        for idx, clique in enumerate(clique_sets):
            for v in clique:
                membership.setdefault(v, []).append(idx)
        return CliqueCover(
            cliques=clique_sets,
            membership={v: tuple(ids) for v, ids in membership.items()},
        )

    @staticmethod
    def from_maximal_cliques(graph: nx.Graph) -> "CliqueCover":
        """Identify all maximal cliques (the generic, possibly expensive
        identification each vertex could perform locally in one round)."""
        return CliqueCover.from_cliques(nx.find_cliques(graph))

    # ----------------------------------------------------------- properties

    def diversity(self) -> int:
        """Maximum number of identified cliques any vertex belongs to."""
        if not self.membership:
            return 0
        return max(len(ids) for ids in self.membership.values())

    def diversity_of(self, v: NodeId) -> int:
        return len(self.membership.get(v, ()))

    def max_clique_size(self) -> int:
        if not self.cliques:
            return 0
        return max(len(c) for c in self.cliques)

    def cliques_of(self, v: NodeId) -> Tuple[FrozenSet[NodeId], ...]:
        return tuple(self.cliques[i] for i in self.membership.get(v, ()))

    # ----------------------------------------------------------- operations

    def restricted(self, vertices: Iterable[NodeId]) -> "CliqueCover":
        """The cover induced on a vertex subset: every clique is intersected
        with the subset; empty intersections are dropped.

        Lemma 2.3(ii) guarantees the diversity never increases under this
        restriction for color classes of a connector coloring.
        """
        vset = set(vertices)
        restricted = [clique & vset for clique in self.cliques]
        return CliqueCover.from_cliques(c for c in restricted if c)

    def validate(self, graph: nx.Graph, require_neighborhood_cover: bool = True) -> None:
        """Raise :class:`CliqueCoverError` unless this cover is consistent
        with ``graph``:

        * every listed clique is a clique of the graph,
        * every vertex of the graph appears in at least one clique,
        * (optionally) the union of a vertex's cliques contains its whole
          neighborhood — the paper's consistency condition.
        """
        nodes = set(graph.nodes())
        for idx, clique in enumerate(self.cliques):
            extra = clique - nodes
            if extra:
                raise CliqueCoverError(f"clique {idx} contains non-vertices {extra!r}")
            members = sorted(clique, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    if not graph.has_edge(u, v):
                        raise CliqueCoverError(
                            f"clique {idx} is not a clique: missing edge ({u!r},{v!r})"
                        )
        uncovered = nodes - set(self.membership)
        if uncovered:
            raise CliqueCoverError(f"vertices not covered by any clique: {uncovered!r}")
        if require_neighborhood_cover:
            for v in nodes:
                covered: Set[NodeId] = set()
                for clique in self.cliques_of(v):
                    covered |= clique
                missing = set(graph.neighbors(v)) - covered
                if missing:
                    raise CliqueCoverError(
                        f"cliques of {v!r} do not cover neighbors {missing!r}"
                    )

    def partition_clique(self, clique_idx: int, t: int) -> List[List[NodeId]]:
        """Deterministically split clique ``clique_idx`` into groups of size
        at most ``t`` (the connector construction of Section 2).

        Vertices are ordered by their repr-stable sort so that the clique
        master's computation is reproducible; the paper has the clique master
        (highest id) choose any fixed partition.
        """
        if t < 1:
            raise CliqueCoverError("group size t must be >= 1")
        ordered = sorted(self.cliques[clique_idx], key=repr)
        return [ordered[i : i + t] for i in range(0, len(ordered), t)]
