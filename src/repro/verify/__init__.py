"""First-class invariant verification.

Three layers, each load-bearing in the pipeline:

* :mod:`repro.verify.checkers` — strict checkers for every correctness
  claim the paper states (proper vertex/edge colorings, star partitions,
  clique decompositions, defective colorings, H-partitions). Partial and
  spurious assignments are explicit violations.
* :mod:`repro.verify.oracles` — the :class:`InvariantOracle` registry.
  Every algorithm in :mod:`repro.registry` declares the invariants its
  output must satisfy (``AlgorithmSpec.invariants``); palette bounds are
  recomputed from :mod:`repro.core.params` as functions of
  ``(Delta, a, n, params)``. :func:`verify_run` folds the oracles into a
  :class:`Verdict` — the value the campaign runner persists per cell.
* :mod:`repro.verify.differential` — cross-engine differential execution
  (ReferenceEngine vs VectorEngine, field-by-field) and
  :func:`recheck_row`, the ``repro verify`` CLI path that re-executes and
  re-verifies persisted store rows.
"""

from repro.verify.checkers import (
    count_colors,
    max_star_size,
    verify_clique_decomposition,
    verify_defective_coloring,
    verify_edge_coloring,
    verify_h_partition,
    verify_star_partition,
    verify_vertex_coloring,
)
from repro.verify.differential import (
    DiffResult,
    FieldMismatch,
    RecheckResult,
    compare_runs,
    default_diff_cells,
    differential_check,
    recheck_row,
)
from repro.verify.oracles import (
    VERDICTS,
    InvariantOracle,
    OracleContext,
    Verdict,
    claimed_palette_bound,
    get_oracle,
    oracle_names,
    oracles_for,
    register_oracle,
    register_palette_bound,
    verify_run,
)

__all__ = [
    "count_colors",
    "max_star_size",
    "verify_clique_decomposition",
    "verify_defective_coloring",
    "verify_edge_coloring",
    "verify_h_partition",
    "verify_star_partition",
    "verify_vertex_coloring",
    "DiffResult",
    "FieldMismatch",
    "RecheckResult",
    "compare_runs",
    "default_diff_cells",
    "differential_check",
    "recheck_row",
    "VERDICTS",
    "InvariantOracle",
    "OracleContext",
    "Verdict",
    "claimed_palette_bound",
    "get_oracle",
    "oracle_names",
    "oracles_for",
    "register_oracle",
    "register_palette_bound",
    "verify_run",
]
