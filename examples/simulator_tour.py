"""A tour of the LOCAL simulator: write your own distributed algorithm.

The library's algorithms are all built on `repro.local`; this example shows
the full per-node programming model on a self-contained problem — a
*maximal independent set* via the deterministic coloring-to-MIS reduction:

1. color the graph with the (Delta+1)-oracle,
2. sweep the color classes: class-c vertices join the MIS if no neighbor
   joined earlier, and announce it.

Step 2 is written as a `NodeAlgorithm` from scratch, so you can see
initialize/step/halt, message passing, per-round accounting, bandwidth
tracking, and crash injection in one place.

Run:  python examples/simulator_tour.py
"""

import networkx as nx

from repro.graphs import erdos_renyi, max_degree
from repro.local import Network, NodeAlgorithm, estimate_payload_bits, is_congest_width
from repro.substrates import ColoringOracle


class ColorClassMIS(NodeAlgorithm):
    """Sweep color classes; earlier classes have priority.

    Context extras:
        coloring: node -> color (proper).
        num_colors: palette size (the number of sweep rounds).
    """

    name = "color-class-mis"

    def initialize(self, node, ctx):
        node.state["color"] = ctx.node_input(node.id, "coloring")
        node.state["blocked"] = False
        node.state["output"] = None
        if node.state["color"] == 0:  # class 0 joins immediately
            node.state["output"] = True
            node.broadcast("joined")
            node.halt()

    def step(self, node, inbox, round_no, ctx):
        if any(msg.payload == "joined" for msg in inbox):
            node.state["blocked"] = True
        if node.state["color"] == round_no:  # my class's turn
            joined = not node.state["blocked"]
            node.state["output"] = joined
            if joined:
                node.broadcast("joined")
            node.halt()
        if round_no >= ctx.extras["num_colors"]:
            node.state["output"] = not node.state["blocked"]
            node.halt()


def main() -> None:
    graph = erdos_renyi(80, 0.08, seed=13)
    delta = max_degree(graph)
    print(f"graph: n={graph.number_of_nodes()} m={graph.number_of_edges()} Delta={delta}")

    # Step 1: the (Delta+1)-coloring oracle from the library.
    coloring = ColoringOracle().vertex_coloring(graph)
    num_colors = max(coloring.values()) + 1
    print(f"oracle coloring: {num_colors} colors")

    # Step 2: our own NodeAlgorithm, driven by the simulator.
    net = Network(graph)
    ctx = net.make_context(coloring=coloring, num_colors=num_colors)
    result = net.run(ColorClassMIS(), ctx, track_bandwidth=True)

    mis = {v for v, joined in result.outputs.items() if joined}
    # verify: independent and maximal
    assert all(not (u in mis and v in mis) for u, v in graph.edges())
    assert all(v in mis or any(u in mis for u in graph.neighbors(v)) for v in graph.nodes())
    print(
        f"MIS of size {len(mis)} in {result.rounds} rounds, "
        f"{result.messages} messages "
        f"(peak {result.peak_round_messages}/round, "
        f"max payload {result.max_message_bits} bits, "
        f"CONGEST-ok: {is_congest_width(result.max_message_bits, net.n)})"
    )

    # Crash injection: fail two nodes mid-sweep; the survivors' output must
    # still be independent (they only ever react to delivered messages).
    result2 = net.run(ColorClassMIS(), ctx, crashes={0: 2, 5: 3})
    alive = set(graph.nodes()) - set(result2.crashed)
    mis2 = {v for v in alive if result2.outputs[v]}
    assert all(
        not (u in mis2 and v in mis2) for u, v in graph.edges() if u in alive and v in alive
    )
    print(
        f"with crashes {sorted(result2.crashed)}: surviving MIS of size "
        f"{len(mis2)} remains independent"
    )


if __name__ == "__main__":
    main()
