#!/usr/bin/env python3
"""Benchmark: reference vs. vector engine wall-clock on a scaling sweep.

Two tiers:

* **Engine tier** — the Appendix-B basic color reduction on line graphs of
  random regular graphs, the round loop that dominates every oracle
  invocation in the library. Each round only one color class acts, which is
  exactly the shape the vector engine's event-driven stepping exploits: the
  reference engine pays O(n) per round, the vector engine O(active +
  messages). The sweep grows the line graph; the speedup grows with it.
* **Pipeline tier** — full registry algorithms (``star4``, ``thm52``) end
  to end under ``use_engine``, where graph construction and polynomial
  arithmetic (engine-independent) dilute the win; reported for honesty.

Writes ``BENCH_engines.json`` and exits nonzero if the vector engine is not
at least ``--require-speedup`` (default 3.0) times faster than the
reference engine on the largest engine-tier graph.

Run:  PYTHONPATH=src python benchmarks/bench_engine_comparison.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List

from repro import registry
from repro.engine import get_engine, use_engine
from repro.graphs import line_graph_with_cover, random_regular, star_forest_stack
from repro.substrates.linial import linial_coloring
from repro.substrates.reduction import BasicReductionAlgorithm

# (n, d) ladder for the engine tier; the line graph of the last entry is
# the "largest graph" the speedup gate applies to.
ENGINE_SWEEP = ((60, 6), (120, 8), (200, 10), (280, 12))


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def engine_tier(repeats: int) -> List[Dict[str, Any]]:
    rows = []
    for n, d in ENGINE_SWEEP:
        line, _ = line_graph_with_cover(random_regular(n, d, seed=7))
        initial = linial_coloring(line)
        delta = max(dd for _, dd in line.degree())
        extras = {
            "coloring": initial,
            "m": max(initial.values()) + 1,
            "target": 2 * delta + 1,
        }
        reference = get_engine("reference")
        vector = get_engine("vector")
        algorithm = BasicReductionAlgorithm()
        ref_result = reference.run(line, algorithm, extras=extras)
        vec_result = vector.run(line, algorithm, extras=extras)
        assert vec_result.outputs == ref_result.outputs, "engine parity violated"
        assert vec_result.rounds == ref_result.rounds
        ref_s = _best_of(repeats, lambda: reference.run(line, algorithm, extras=extras))
        vec_s = _best_of(repeats, lambda: vector.run(line, algorithm, extras=extras))
        rows.append(
            {
                "tier": "engine",
                "workload": f"basic-reduction on L(G(n={n}, d={d}))",
                "n": line.number_of_nodes(),
                "m": line.number_of_edges(),
                "rounds": ref_result.rounds,
                "reference_s": ref_s,
                "vector_s": vec_s,
                "speedup": ref_s / vec_s,
            }
        )
        print(
            f"engine   {rows[-1]['workload']:<42} n={rows[-1]['n']:<5} "
            f"ref {ref_s:.3f}s vec {vec_s:.3f}s -> {rows[-1]['speedup']:.2f}x"
        )
    return rows


def pipeline_tier(repeats: int) -> List[Dict[str, Any]]:
    cases = [
        ("star4", random_regular(160, 12, seed=5), {}),
        ("thm52", star_forest_stack(8, 60, 3, seed=13), {"arboricity": 3}),
    ]
    rows = []
    for name, graph, params in cases:
        def run_with(engine: str) -> None:
            with use_engine(engine):
                registry.run(name, graph, **params)

        ref_s = _best_of(repeats, lambda: run_with("reference"))
        vec_s = _best_of(repeats, lambda: run_with("vector"))
        rows.append(
            {
                "tier": "pipeline",
                "workload": f"{name} (full pipeline)",
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
                "reference_s": ref_s,
                "vector_s": vec_s,
                "speedup": ref_s / vec_s,
            }
        )
        print(
            f"pipeline {rows[-1]['workload']:<42} n={rows[-1]['n']:<5} "
            f"ref {ref_s:.3f}s vec {vec_s:.3f}s -> {rows[-1]['speedup']:.2f}x"
        )
    return rows


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_engines.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=3.0,
        help="minimum vector-engine speedup on the largest engine-tier graph",
    )
    args = parser.parse_args(argv)

    rows = engine_tier(args.repeats) + pipeline_tier(args.repeats)
    largest = max(
        (r for r in rows if r["tier"] == "engine"), key=lambda r: r["n"]
    )
    payload = {
        "benchmark": "engine-comparison",
        "engine_sweep": [{"n": n, "d": d} for n, d in ENGINE_SWEEP],
        "largest_graph_speedup": largest["speedup"],
        "required_speedup": args.require_speedup,
        "rows": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
    print(f"wrote {args.out}")
    print(
        f"largest engine-tier graph (n={largest['n']}): "
        f"{largest['speedup']:.2f}x (required {args.require_speedup:.1f}x)"
    )
    if largest["speedup"] < args.require_speedup:
        print("FAIL: vector engine below required speedup", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
