"""Scaling-shape statistics for reproduction checks.

The paper's tables make *scaling* claims (rounds ~ Delta^(1/(2x+2)), etc.).
These helpers fit power laws to measured sweeps so tests and benchmarks can
assert the exponent, not just point values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ coefficient * x^exponent`` (least squares in log-log space)."""

    exponent: float
    coefficient: float
    residual: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^e`` by linear regression on (log x, log y)."""
    if len(xs) != len(ys):
        raise InvalidParameterError("xs and ys must have equal length")
    if len(xs) < 2:
        raise InvalidParameterError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise InvalidParameterError("power-law fit needs positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    (slope, intercept), residuals, *_ = np.polyfit(log_x, log_y, 1, full=True)
    residual = float(residuals[0]) if len(residuals) else 0.0
    return PowerLawFit(
        exponent=float(slope), coefficient=float(np.exp(intercept)), residual=residual
    )


def geometric_mean(values: Sequence[float]) -> float:
    """The geometric mean (the right average for ratios/speedups)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError("geometric mean of empty sequence")
    if np.any(array <= 0):
        raise InvalidParameterError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(array))))
