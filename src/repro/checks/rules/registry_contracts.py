"""Registry-contract rules: self-registration stays complete and honest.

The registries are how a new algorithm/kernel becomes a CLI choice, a
campaign cell and a parity subject in one step — but a registration with
missing metadata fails *silently* (the verifier falls back to weaker
defaults; the lazy kernel loader simply never finds the module). These
rules make the contracts mechanical:

* ``reg-spec-invariants`` — every ``AlgorithmSpec(...)`` construction
  passes ``invariants=`` explicitly. An algorithm without declared
  oracles would verify against kind-level defaults only, so the
  omission must be a visible decision (``invariants=()`` with a waiver),
  never an accident.
* ``reg-kernel-module`` — the lazy kernel registry
  (``kernels/__init__._KERNEL_MODULES``) and the ``register_kernel``
  calls in the kernel modules describe the same mapping: every
  registering module is reachable, every mapped name is actually
  registered by the module it routes to. A kernel outside the map is
  dead code the vector engine will never dispatch.
* ``reg-compact-parity`` — when any spec declares ``compact_ok=True``,
  the compact-parity suite (``tests/engine/test_compact_parity.py``)
  must exist and derive its case list from the live registry (it
  references ``compact_ok``), so a newly compact-capable algorithm is
  parity-tested by construction rather than by remembering to add it to
  a hand-written list.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.checks.base import CheckRule, FileChecker, ProjectChecker, register_checker

#: Root-relative path of the suite that proves CompactGraph inputs and
#: networkx inputs produce identical runs.
COMPACT_PARITY_SUITE = "tests/engine/test_compact_parity.py"


def _is_algorithm_spec(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "AlgorithmSpec"
    return isinstance(func, ast.Attribute) and func.attr == "AlgorithmSpec"


def _keyword(call: ast.Call, name: str):
    for kw in call.keywords:
        if kw.arg == name:
            return kw
    return None


@register_checker
class SpecInvariants(FileChecker):
    rule = CheckRule(
        name="reg-spec-invariants",
        family="registry",
        summary="every AlgorithmSpec(...) declares invariants= "
        "explicitly (the verify-layer oracles its output must satisfy)",
    )

    def check(self, file) -> Iterator[Tuple[int, str]]:
        for node in ast.walk(file.tree):
            if not (isinstance(node, ast.Call) and _is_algorithm_spec(node)):
                continue
            if _keyword(node, "invariants") is None:
                name_kw = _keyword(node, "name")
                label = ""
                if name_kw is not None and isinstance(name_kw.value, ast.Constant):
                    label = f" ({name_kw.value.value!r})"
                yield node.lineno, (
                    f"AlgorithmSpec{label} does not declare invariants= — "
                    "name the verify-layer oracles its output must satisfy "
                    "(or an explicit empty tuple with a waiver)"
                )


def _kernel_modules_map(init_file) -> Tuple[Dict[str, str], int]:
    """``_KERNEL_MODULES`` as a dict plus its assignment line, extracted
    from the AST of ``kernels/__init__.py``."""
    for node in init_file.tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "_KERNEL_MODULES"
                for t in node.targets
            )
        ) or (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "_KERNEL_MODULES"
            and node.value is not None
        ):
            value = node.value if isinstance(node, (ast.Assign, ast.AnnAssign)) else None
            try:
                mapping = ast.literal_eval(value)
            except ValueError:
                return {}, node.lineno
            if isinstance(mapping, dict):
                return {str(k): str(v) for k, v in mapping.items()}, node.lineno
            return {}, node.lineno
    return {}, 1


def _registered_kernels(file) -> List[Tuple[str, int]]:
    """(kernel name, line) for every ``register_kernel("name", ...)``
    call with a literal first argument in ``file``."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "register_kernel" or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            out.append((first.value, node.lineno))
    return out


@register_checker
class KernelModuleRegistered(ProjectChecker):
    rule = CheckRule(
        name="reg-kernel-module",
        family="registry",
        summary="register_kernel calls and the lazy _KERNEL_MODULES map "
        "in kernels/__init__.py describe the same mapping (no dead or "
        "unreachable kernels)",
    )

    def check(self, project) -> Iterator[Tuple[str, int, str]]:
        init_file = project.file("kernels/__init__.py")
        if init_file is None:
            return
        mapping, map_line = _kernel_modules_map(init_file)
        registered: Dict[str, Tuple[str, int]] = {}  # name -> (module, line)
        for file in project.files:
            if not file.pkg_rel.startswith("kernels/") or file.pkg_rel.endswith(
                "__init__.py"
            ):
                continue
            module = "repro.kernels." + file.pkg_rel[len("kernels/"):-len(".py")]
            for name, line in _registered_kernels(file):
                registered[name] = (module, line)
                if module not in mapping.values():
                    yield file.pkg_rel, line, (
                        f"kernel {name!r} is registered by {module}, but that "
                        "module is not reachable through "
                        "_KERNEL_MODULES in kernels/__init__.py — the lazy "
                        "loader will never import it"
                    )
                elif mapping.get(name) != module:
                    routed = mapping.get(name)
                    target = (
                        f"routes it to {routed!r}" if routed
                        else "does not map it at all"
                    )
                    yield file.pkg_rel, line, (
                        f"kernel {name!r} is registered by {module}, but "
                        f"_KERNEL_MODULES {target} — get_kernel({name!r}) "
                        "cannot resolve it lazily"
                    )
        for name, module in sorted(mapping.items()):
            if name not in registered:
                yield "kernels/__init__.py", map_line, (
                    f"_KERNEL_MODULES maps {name!r} to {module}, but no "
                    "scanned kernel module registers that name"
                )
            elif registered[name][0] != module:
                # already reported from the registering module's side
                continue


@register_checker
class CompactParityCoverage(ProjectChecker):
    rule = CheckRule(
        name="reg-compact-parity",
        family="registry",
        summary="compact_ok=True requires the compact-parity suite to "
        "exist and derive its cases from the live registry (references "
        "compact_ok), so coverage cannot silently go stale",
    )

    def check(self, project) -> Iterator[Tuple[str, int, str]]:
        compact_sites: List[Tuple[str, int, str]] = []
        for file in project.files:
            for node in ast.walk(file.tree):
                if not (isinstance(node, ast.Call) and _is_algorithm_spec(node)):
                    continue
                kw = _keyword(node, "compact_ok")
                if kw is None or not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                ):
                    continue
                name_kw = _keyword(node, "name")
                label = (
                    repr(name_kw.value.value)
                    if name_kw is not None and isinstance(name_kw.value, ast.Constant)
                    else "<unnamed>"
                )
                compact_sites.append((file.pkg_rel, node.lineno, label))
        if not compact_sites:
            return
        suite = project.read_outside(COMPACT_PARITY_SUITE)
        if suite is None:
            for pkg_rel, line, label in compact_sites:
                yield pkg_rel, line, (
                    f"algorithm {label} declares compact_ok=True but the "
                    f"compact-parity suite ({COMPACT_PARITY_SUITE}) is "
                    "missing — nothing proves CSR and networkx inputs agree"
                )
            return
        tree = ast.parse(suite)
        registry_driven = any(
            (isinstance(node, ast.Attribute) and node.attr == "compact_ok")
            or (isinstance(node, ast.Name) and node.id == "compact_ok")
            for node in ast.walk(tree)
        )
        if not registry_driven:
            for pkg_rel, line, label in compact_sites:
                yield pkg_rel, line, (
                    f"algorithm {label} declares compact_ok=True but "
                    f"{COMPACT_PARITY_SUITE} never references compact_ok — "
                    "the suite must enumerate compact-capable algorithms "
                    "from the live registry, not a hand-written list"
                )
