"""Integration tests: every pipeline end to end on shared workloads, with
cross-algorithm consistency checks."""

import networkx as nx
import pytest

from repro.analysis import verify_edge_coloring, verify_vertex_coloring
from repro.baselines import (
    degree_splitting_edge_coloring,
    greedy_edge_coloring,
    misra_gries_edge_coloring,
)
from repro.core import (
    cd_coloring,
    cd_edge_coloring,
    edge_color_bounded_arboricity,
    edge_color_delta_plus_o_delta,
    four_delta_edge_coloring,
    star_partition_edge_coloring,
)
from repro.graphs import (
    arboricity_bounds,
    forest_union,
    line_graph_with_cover,
    max_degree,
    random_regular,
)
from repro.local import RoundLedger
from repro.substrates import ColoringOracle


@pytest.fixture(scope="module")
def workload():
    return random_regular(36, 10, seed=99)


class TestEveryEdgeColoringPipeline:
    def test_all_proper_on_shared_workload(self, workload):
        delta = max_degree(workload)
        results = {
            "vizing": misra_gries_edge_coloring(workload),
            "greedy": greedy_edge_coloring(workload),
            "oracle": ColoringOracle().edge_coloring(workload),
            "star-x1": four_delta_edge_coloring(workload).coloring,
            "star-x2": star_partition_edge_coloring(workload, x=2).coloring,
            "cd-line": cd_edge_coloring(workload, x=1).coloring,
            "split": degree_splitting_edge_coloring(workload).coloring,
            "thm52": edge_color_bounded_arboricity(workload).coloring,
        }
        for name, coloring in results.items():
            verify_edge_coloring(workload, coloring)

    def test_color_count_ordering(self, workload):
        """Vizing <= greedy <= our 4Delta target: the quality ladder holds."""
        delta = max_degree(workload)
        vizing = len(set(misra_gries_edge_coloring(workload).values()))
        greedy = len(set(greedy_edge_coloring(workload).values()))
        ours = four_delta_edge_coloring(workload).colors_used
        assert vizing <= delta + 1
        assert vizing <= greedy <= 2 * delta - 1
        assert ours <= 4 * delta

    def test_section3_and_section4_agree_on_target(self, workload):
        """Theorem 3.3(ii) and Theorem 4.1 both promise 2^(x+1) Delta."""
        for x in (1, 2):
            via_line = cd_edge_coloring(workload, x=x)
            via_star = star_partition_edge_coloring(workload, x=x)
            assert via_line.target_colors == via_star.target_colors
            assert via_line.colors_used <= via_line.target_colors
            assert via_star.colors_used <= via_star.target_colors


class TestLowArboricityPipeline:
    def test_delta_plus_o_delta_beats_doubling(self):
        """On Delta >> a instances, Section 5 must use fewer colors than any
        (2Delta-1)-style algorithm — the paper's headline claim."""
        from repro.graphs import star_forest_stack

        graph = star_forest_stack(n_centers=5, leaves_per_center=25, a=2, seed=5)
        delta = max_degree(graph)
        assert delta >= 15
        ours = edge_color_bounded_arboricity(graph, arboricity=2)
        verify_edge_coloring(graph, ours.coloring)
        assert ours.colors_used < 2 * delta - 1

    def test_corollary_55_full_pipeline(self):
        graph = forest_union(100, 3, seed=6)
        result = edge_color_delta_plus_o_delta(graph)
        verify_edge_coloring(graph, result.coloring)
        bounds = arboricity_bounds(graph)
        assert result.arboricity >= bounds.lower


class TestSeedIsolation:
    def test_oracle_runs_do_not_interfere(self):
        """One oracle instance reused across different graphs stays correct."""
        oracle = ColoringOracle()
        g1 = random_regular(20, 4, seed=1)
        g2 = nx.complete_graph(7)
        c1 = oracle.vertex_coloring(g1)
        c2 = oracle.vertex_coloring(g2)
        c1_again = oracle.vertex_coloring(g1)
        assert c1 == c1_again
        verify_vertex_coloring(g2, c2, palette=7)

    def test_ledgers_compose_across_pipelines(self):
        graph = random_regular(24, 6, seed=2)
        ledger = RoundLedger()
        four_delta_edge_coloring(graph, ledger=ledger)
        first = ledger.total_actual
        edge_color_bounded_arboricity(graph, ledger=ledger)
        assert ledger.total_actual > first


class TestLineGraphConsistency:
    def test_cd_coloring_of_line_graph_is_edge_coloring(self):
        base = random_regular(18, 6, seed=3)
        line, cover = line_graph_with_cover(base)
        result = cd_coloring(line, cover, x=1)
        verify_vertex_coloring(line, result.coloring)
        # the same map read as an edge coloring of the base graph is proper
        verify_edge_coloring(base, dict(result.coloring))
