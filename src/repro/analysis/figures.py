"""Reproductions of the paper's Figures 1-3 (the connector gadgets).

The paper's figures are schematic drawings of the three connector
constructions. These builders create the exact gadget instances the captions
describe, apply the construction, and render a textual (DOT + summary)
figure, so the structural claims pictured in the appendix are checkable:

* Figure 1 — clique connector with t = 4 on two cliques sharing a vertex.
* Figure 2 — edge-connector with t = 3.
* Figure 3 — orientation connector on an acyclically oriented gadget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.graphs.cliques import CliqueCover
from repro.graphs.generators import shared_vertex_cliques
from repro.graphs.orientation import Orientation, orient_acyclic_by_order
from repro.graphs.properties import max_degree
from repro.core.connectors import (
    EdgeConnector,
    OrientationConnector,
    build_clique_connector,
    build_edge_connector,
    build_orientation_connector,
)


@dataclass
class FigureReport:
    """A rendered figure: the gadget, the connector, and the bound check."""

    name: str
    description: str
    base_nodes: int
    base_edges: int
    connector_nodes: int
    connector_edges: int
    base_max_degree: int
    connector_max_degree: int
    degree_bound: int
    dot: str

    @property
    def within_bound(self) -> bool:
        return self.connector_max_degree <= self.degree_bound

    def summary(self) -> str:
        status = "OK" if self.within_bound else "VIOLATED"
        return (
            f"{self.name}: base |V|={self.base_nodes} |E|={self.base_edges} "
            f"Delta={self.base_max_degree}; connector |V|={self.connector_nodes} "
            f"|E|={self.connector_edges} Delta={self.connector_max_degree} "
            f"(bound {self.degree_bound}, {status})"
        )


def _to_dot(graph: nx.Graph, name: str) -> str:
    lines = [f'graph "{name}" {{']
    for v in sorted(graph.nodes(), key=repr):
        lines.append(f'  "{v}";')
    for u, v in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        lines.append(f'  "{u}" -- "{v}";')
    lines.append("}")
    return "\n".join(lines)


def figure1_clique_connector(t: int = 4, clique_size: int = 8) -> FigureReport:
    """Figure 1: two cliques Q, R sharing a vertex v; the connector with
    t = 4 keeps only within-group edges, so the shared vertex's degree drops
    to at most D * (t - 1) = 2 * (t - 1)."""
    graph = shared_vertex_cliques(clique_size=clique_size, num_cliques=2)
    cover = CliqueCover.from_maximal_cliques(graph)
    connector = build_clique_connector(graph, cover, t)
    diversity = cover.diversity()
    return FigureReport(
        name="figure-1-clique-connector",
        description=(
            f"Two cliques of size {clique_size} sharing one vertex, t={t}: "
            "each clique is split into groups of size t and only "
            "within-group edges survive (Lemma 2.1)."
        ),
        base_nodes=graph.number_of_nodes(),
        base_edges=graph.number_of_edges(),
        connector_nodes=connector.number_of_nodes(),
        connector_edges=connector.number_of_edges(),
        base_max_degree=max_degree(graph),
        connector_max_degree=max_degree(connector),
        degree_bound=diversity * (t - 1),
        dot=_to_dot(connector, "figure1"),
    )


def figure2_edge_connector(t: int = 3, star_size: int = 7) -> FigureReport:
    """Figure 2: the edge-connector with t = 3 on a star plus a path; every
    virtual vertex owns at most t edges, so the connector's maximum degree
    is exactly min(t, Delta)."""
    graph = nx.star_graph(star_size)
    path_nodes = list(range(star_size + 1, star_size + 5))
    nx.add_path(graph, [star_size] + path_nodes)
    connector = build_edge_connector(graph, t)
    return FigureReport(
        name="figure-2-edge-connector",
        description=(
            f"A star of size {star_size} with a pendant path, t={t}: the "
            "center splits into ceil(deg/t) virtual vertices each owning at "
            "most t edges (Section 4)."
        ),
        base_nodes=graph.number_of_nodes(),
        base_edges=graph.number_of_edges(),
        connector_nodes=connector.graph.number_of_nodes(),
        connector_edges=connector.graph.number_of_edges(),
        base_max_degree=max_degree(graph),
        connector_max_degree=max_degree(connector.graph),
        degree_bound=t,
        dot=_to_dot(connector.graph, "figure2"),
    )


def figure3_orientation_connector(
    in_group: int = 3, out_group: int = 2
) -> FigureReport:
    """Figure 3: the orientation connector on a DAG-oriented gadget — one
    hub receiving many edges and emitting a few. In-groups bound the degree,
    out-groups bound the out-degree (hence the arboricity)."""
    graph = nx.Graph()
    hub = 0
    sources = list(range(1, 10))
    sinks = [10, 11, 12]
    for s in sources:
        graph.add_edge(s, hub)
    for k in sinks:
        graph.add_edge(hub, k)
    order = sources + [hub] + sinks
    orientation = orient_acyclic_by_order(graph, order)
    connector = build_orientation_connector(
        graph, orientation, in_group_size=in_group, out_group_size=out_group
    )
    bound = in_group + out_group
    return FigureReport(
        name="figure-3-orientation-connector",
        description=(
            f"A hub with {len(sources)} incoming and {len(sinks)} outgoing "
            f"edges, in-groups of {in_group}, out-groups of {out_group}: "
            "virtual vertices carry at most in_group + out_group edges and "
            "the inherited orientation stays acyclic (Section 5)."
        ),
        base_nodes=graph.number_of_nodes(),
        base_edges=graph.number_of_edges(),
        connector_nodes=connector.graph.number_of_nodes(),
        connector_edges=connector.graph.number_of_edges(),
        base_max_degree=max_degree(graph),
        connector_max_degree=max_degree(connector.graph),
        degree_bound=bound,
        dot=_to_dot(connector.graph, "figure3"),
    )


def all_figures() -> List[FigureReport]:
    return [
        figure1_clique_connector(),
        figure2_edge_connector(),
        figure3_orientation_connector(),
    ]


def main() -> None:  # pragma: no cover - CLI entry point
    for report in all_figures():
        print(report.summary())
        print(report.description)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
