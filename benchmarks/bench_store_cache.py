#!/usr/bin/env python3
"""Benchmark: cold vs. warm campaign wall-clock through the run cache.

Runs one >= 60-cell campaign grid (paper algorithms + executable baselines
x three workload families x three seeds) twice against the same
experiment store:

* **cold** — empty store, every cell executes through the registry;
* **warm** — identical grid, every cell is a content-addressed cache hit
  served straight from SQLite, short-circuiting all computation.

Writes ``BENCH_store.json`` and exits nonzero if the warm pass is not at
least ``--require-speedup`` (default 10.0) times faster than the cold
pass, or if any cell misses the cache on the warm pass.

Run:  PYTHONPATH=src python benchmarks/bench_store_cache.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List

from repro.analysis.campaign import CampaignCell, CampaignRunner
from repro.store import ExperimentStore, RunCache

ALGORITHMS = ("star4", "star", "thm52", "cor55", "forest", "greedy", "vizing")
GRIDS = (
    ("random-regular", {"n": 32, "d": 6}),
    ("star-forest-stack", {"n_centers": 4, "leaves_per_center": 12, "a": 2}),
    ("erdos-renyi", {"n": 32, "p": 0.15}),
)
SEEDS = (0, 1, 2)


def grid() -> List[CampaignCell]:
    return [
        CampaignCell(
            algorithm=algorithm, workload=workload, workload_params=params, seed=seed
        )
        for algorithm in ALGORITHMS
        for workload, params in GRIDS
        for seed in SEEDS
    ]


def run_pass(store: ExperimentStore, cells: List[CampaignCell]):
    cache = RunCache(store)
    started = time.perf_counter()
    rows = CampaignRunner(cells, cache=cache).run()
    elapsed = time.perf_counter() - started
    return elapsed, rows, cache


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require-speedup", type=float, default=10.0)
    parser.add_argument("--out", default="BENCH_store.json")
    args = parser.parse_args()

    cells = grid()
    assert len(cells) >= 60, f"grid too small: {len(cells)} cells"

    with tempfile.TemporaryDirectory() as tmp:
        with ExperimentStore(Path(tmp) / "bench.db") as store:
            cold_s, cold_rows, _ = run_pass(store, cells)
            warm_s, warm_rows, warm_cache = run_pass(store, cells)

    failed = [r for r in cold_rows if r["error"]]
    warm_misses = warm_cache.misses
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    payload = {
        "benchmark": "store_cache",
        "cells": len(cells),
        "algorithms": list(ALGORITHMS),
        "workloads": [name for name, _ in GRIDS],
        "seeds": list(SEEDS),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "warm_cache_hits": warm_cache.hits,
        "warm_cache_misses": warm_misses,
        "failed_cells": len(failed),
        "require_speedup": args.require_speedup,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(json.dumps(payload, indent=1))

    if failed:
        print(f"FAIL: {len(failed)} cells errored", file=sys.stderr)
        return 1
    if warm_misses:
        print(f"FAIL: warm pass missed the cache {warm_misses} times", file=sys.stderr)
        return 1
    if speedup < args.require_speedup:
        print(
            f"FAIL: warm speedup {speedup:.1f}x < required "
            f"{args.require_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: warm cache {speedup:.1f}x faster over {len(cells)} cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
