"""Tests for the interconnect topologies (torus, fat-tree)."""

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.graphs import arboricity_bounds, fat_tree, max_degree, torus


class TestTorus:
    def test_four_regular(self):
        g = torus(4, 5)
        assert g.number_of_nodes() == 20
        assert all(d == 4 for _, d in g.degree())

    def test_edge_count(self):
        g = torus(5, 5)
        assert g.number_of_edges() == 2 * 25

    def test_low_arboricity(self):
        bounds = arboricity_bounds(torus(6, 6))
        # true arboricity is 3 (m = 2n, density 2n/(n-1)); the degeneracy
        # upper bound is 4 because every vertex has degree exactly 4
        assert bounds.lower == 3
        assert bounds.upper <= 4

    def test_connected(self):
        assert nx.is_connected(torus(3, 7))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            torus(2, 5)


class TestFatTree:
    def test_switch_counts(self):
        k = 4
        g = fat_tree(k)
        # k pods * k switches + (k/2)^2 cores
        assert g.number_of_nodes() == k * k + (k // 2) ** 2

    def test_edge_count(self):
        k = 4
        g = fat_tree(k)
        # per pod: (k/2)^2 edge-agg links + (k/2)*(k/2) agg-core links
        expected = k * ((k // 2) ** 2) * 2
        assert g.number_of_edges() == expected

    def test_degrees_bounded_by_k(self):
        for k in (2, 4, 6):
            assert max_degree(fat_tree(k)) <= k

    def test_connected(self):
        assert nx.is_connected(fat_tree(4))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            fat_tree(3)
        with pytest.raises(InvalidParameterError):
            fat_tree(0)

    def test_schedulable_with_four_delta(self):
        from repro.analysis import verify_edge_coloring
        from repro.core import four_delta_edge_coloring

        g = fat_tree(4)
        result = four_delta_edge_coloring(g)
        verify_edge_coloring(g, result.coloring, palette=4 * max_degree(g))
