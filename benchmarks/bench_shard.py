#!/usr/bin/env python3
"""Benchmark: sharded out-of-core execution against the in-core engine.

Three gates, written to ``BENCH_shard.json`` (nonzero exit if one
fails). Both pipelines run in fresh subprocesses so ``ru_maxrss`` means
what it says, on the same prebuilt ``.csrg`` grid (default 1000x1000,
~1M nodes / ~2M edges), running Linial's cover-free refinement:

* **worker-rss** — the peak RSS of the hungriest shard worker must stay
  below ``--require-rss-fraction`` (default 0.5) of the unsharded
  process's peak. This is the point of the layer: per-worker memory is
  bounded by the shard, not the graph.
* **overhead** — sharded wall time (init + exchanges + finalize, with a
  live process pool; partitioning is one-time and reported separately)
  must stay within ``--max-overhead`` (default 4.0) of the unsharded
  run.
* **bit-identical** — both pipelines must produce the same output
  fingerprint and round/message accounting. Not a tolerance: equality.

Run:  PYTHONPATH=src python benchmarks/bench_shard.py
      (smaller/larger: --rows/--cols/--shards)
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")

_CHILD_PRELUDE = """\
import hashlib, json, resource, sys, time
sys.path.insert(0, {src!r})
import numpy as np
from repro.graphcore import load
from repro.local.network import run_on_graph
from repro.substrates.linial import LinialAlgorithm

graph = load({csrg!r}, mmap=True)
extras = {{
    "initial_coloring": {{v: v for v in range(graph.n)}},
    "m0": graph.n,
}}
"""

_CHILD_REPORT = """\
outputs = np.array([run.outputs[v] for v in range(graph.n)], dtype=np.int64)
print(json.dumps({
    "wall_s": wall_s,
    "rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "fingerprint": hashlib.sha256(outputs.tobytes()).hexdigest(),
    "rounds": run.rounds,
    "messages": run.messages,
    **extra_report,
}))
"""

_UNSHARDED_BODY = """\
started = time.perf_counter()
run = run_on_graph(graph, LinialAlgorithm(), extras=extras, engine="vector")
wall_s = time.perf_counter() - started
extra_report = {}
"""

_SHARDED_BODY = """\
from repro.shard import ShardBundle, sharding
bundle = ShardBundle.open({bundle!r})
with sharding(graph, bundle, parent_digest=bundle.parent_digest) as scope:
    started = time.perf_counter()
    run = run_on_graph(graph, LinialAlgorithm(), extras=extras, engine="vector")
    wall_s = time.perf_counter() - started
    stats = scope.last_stats
assert run.engine == "sharded", "benchmark run fell back to the in-core path"
extra_report = {{
    "worker_peak_rss_kb": stats["worker_peak_rss_kb"],
    "rounds_executed": stats["rounds_executed"],
}}
"""


def _child(script: str) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True
    )
    if out.returncode != 0:
        raise RuntimeError(f"benchmark child failed:\n{out.stderr}")
    return json.loads(out.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1000)
    parser.add_argument("--cols", type=int, default=1000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--require-rss-fraction", type=float, default=0.5)
    parser.add_argument("--max-overhead", type=float, default=4.0)
    parser.add_argument("--out", default="BENCH_shard.json")
    args = parser.parse_args()

    sys.path.insert(0, _SRC)
    from repro.graphcore import build_grid, save
    from repro.shard import partition

    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as tmp:
        csrg = str(Path(tmp) / "grid.csrg")
        graph = build_grid(args.rows, args.cols)
        save(graph, csrg)

        started = time.perf_counter()
        bundle_dir = str(Path(tmp) / "bundle")
        partition(graph, args.shards, bundle_dir)
        partition_s = time.perf_counter() - started
        del graph

        prelude = _CHILD_PRELUDE.format(src=_SRC, csrg=csrg)
        unsharded = _child(prelude + _UNSHARDED_BODY + _CHILD_REPORT)
        sharded = _child(
            prelude + _SHARDED_BODY.format(bundle=bundle_dir) + _CHILD_REPORT
        )

    rss_fraction = sharded["worker_peak_rss_kb"] / unsharded["rss_kib"]
    overhead = sharded["wall_s"] / unsharded["wall_s"]
    identical = all(
        sharded[key] == unsharded[key]
        for key in ("fingerprint", "rounds", "messages")
    )
    gates = {
        "worker_rss_fraction": {
            "required": args.require_rss_fraction,
            "measured": rss_fraction,
            "passed": rss_fraction <= args.require_rss_fraction,
        },
        "overhead": {
            "required": args.max_overhead,
            "measured": overhead,
            "passed": overhead <= args.max_overhead,
        },
        "bit_identical": {
            "required": True,
            "measured": identical,
            "passed": identical,
        },
    }
    payload = {
        "benchmark": "shard",
        "workload": f"grid {args.rows}x{args.cols}",
        "n": args.rows * args.cols,
        "shards": args.shards,
        "partition_s": partition_s,
        "unsharded": unsharded,
        "sharded": sharded,
        "gates": gates,
        "passed": all(g["passed"] for g in gates.values()),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for name, gate in gates.items():
        flag = "ok" if gate["passed"] else "FAIL"
        print(f"{flag:>4}  {name}: measured {gate['measured']} "
              f"(required {gate['required']})")
    print(f"wrote {args.out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
