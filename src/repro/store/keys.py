"""Content-addressed run keys.

A run key is the ``sha256`` of the canonical JSON of everything that
determines a cell's outcome: the algorithm name and its parameters, the
fully-resolved workload instance (name, merged parameters, seed), the
engine the cell executes under, and the library code version. Two cells
with the same key are the same computation; anything that could change
the result — a parameter, the seed, the engine, a new release — changes
the key, so stale cache entries are unreachable rather than wrong.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import InvalidParameterError


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(
            f"run-key payload is not canonical-JSON serializable: {exc}"
        ) from exc


def _code_version() -> str:
    import repro

    return repro.__version__


def run_key(
    algorithm: str,
    algo_params: Optional[Mapping[str, Any]] = None,
    workload: str = "",
    workload_params: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
    engine: Optional[str] = None,
    code_version: Optional[str] = None,
) -> str:
    """The content address of one campaign cell.

    ``workload_params`` are resolved through the workload registry (so
    explicit defaults and omitted defaults hash identically) and ``engine``
    ``None`` resolves to the process default before hashing.
    """
    from repro.engine import current_engine_name
    from repro.workloads import canonical_instance

    payload: Dict[str, Any] = {
        "algorithm": algorithm,
        "algo_params": dict(algo_params or {}),
        "instance": canonical_instance(workload, workload_params, seed),
        "engine": engine or current_engine_name(),
        "code_version": code_version if code_version is not None else _code_version(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
