"""SQLite-backed experiment store (stdlib ``sqlite3``, WAL mode).

One row per executed campaign cell, keyed by the content-addressed
:func:`~repro.store.keys.run_key`. WAL journaling plus a busy timeout
makes concurrent writers (process-pool workers, parallel campaigns
against one store file) safe: each writer opens its own connection and
commits independently.

The query API returns plain dicts — "DataFrame-like" rows the analysis
layer (``analysis/tables.py``, ``analysis/sweeps.py``) consumes directly.
:func:`stable_row` projects a row onto the deterministic column subset
(everything except wall-clock and timestamps), which is what makes a
killed-and-resumed campaign byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import InvalidParameterError

PathLike = Union[str, Path]

SCHEMA_VERSION = 3

#: Columns whose values are deterministic given the run key — no
#: wall-clock, no timestamps. Resume/uninterrupted comparisons and the
#: ``query --format json`` output use exactly these, in this order.
STABLE_COLUMNS = (
    "run_key",
    "algorithm",
    "family",
    "workload",
    "workload_params",
    "seed",
    "algo_params",
    "engine",
    "code_version",
    "n",
    "m",
    "kind",
    "colors_used",
    "rounds_actual",
    "rounds_modeled",
    "messages",
    "verified",
    "verdict",
    "violation",
    "error",
)

#: All persisted columns (stable ones plus measurement metadata).
#: ``metrics`` is the schema-v3 per-cell observability blob (phase
#: timings, counter snapshot, queue latency — see :mod:`repro.obs`);
#: NULL for rows recorded before v3 or outside a campaign. Deliberately
#: *not* a stable column: instrumentation must never leak into
#: resume/diff comparisons or run keys.
COLUMNS = STABLE_COLUMNS + ("wall_ms", "extra", "metrics", "created_at")

_JSON_COLUMNS = ("workload_params", "algo_params", "extra")

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_key         TEXT PRIMARY KEY,
    algorithm       TEXT NOT NULL,
    family          TEXT,
    workload        TEXT NOT NULL,
    workload_params TEXT NOT NULL DEFAULT '{{}}',
    seed            INTEGER NOT NULL DEFAULT 0,
    algo_params     TEXT NOT NULL DEFAULT '{{}}',
    engine          TEXT NOT NULL,
    code_version    TEXT NOT NULL,
    n               INTEGER,
    m               INTEGER,
    kind            TEXT,
    colors_used     INTEGER,
    rounds_actual   REAL,
    rounds_modeled  REAL,
    messages        INTEGER,
    verified        INTEGER,
    verdict         TEXT,
    violation       TEXT,
    error           TEXT,
    wall_ms         REAL,
    extra           TEXT,
    metrics         TEXT,
    created_at      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_algorithm ON runs (algorithm);
CREATE INDEX IF NOT EXISTS idx_runs_workload  ON runs (workload);
CREATE INDEX IF NOT EXISTS idx_runs_family    ON runs (family);
CREATE INDEX IF NOT EXISTS idx_runs_version   ON runs (code_version);
"""

#: query() filters that map straight onto equality predicates.
_FILTERS = (
    "algorithm",
    "family",
    "workload",
    "seed",
    "engine",
    "kind",
    "code_version",
    "verdict",
)

#: Columns schema v1 (PR 2/3 stores) lacks; the v1 -> v2 migration adds
#: them with NULL values, i.e. every pre-existing row starts *unverified*
#: and ``repro verify`` / the next campaign fills the verdicts in.
_V2_COLUMNS = ("verdict TEXT", "violation TEXT")

#: Column schema v2 (PR 4-6 stores) lacks; the v2 -> v3 migration adds it
#: with NULL values — pre-existing rows simply have no observability blob
#: (``repro stats`` reports them as pre-v3 and falls back to ``wall_ms``).
_V3_COLUMNS = ("metrics TEXT",)


def stable_row(row: Mapping[str, Any]) -> Dict[str, Any]:
    """Project ``row`` onto :data:`STABLE_COLUMNS` (deterministic subset)."""
    return {column: row.get(column) for column in STABLE_COLUMNS}


class ExperimentStore:
    """One SQLite file of content-addressed campaign runs.

    Usable as a context manager; safe for concurrent writers across
    processes (WAL + ``busy_timeout``). All JSON-valued columns
    (``workload_params``, ``algo_params``, ``extra``) are decoded on the
    way out, so callers only ever see dicts.
    """

    def __init__(self, path: PathLike, timeout: float = 30.0):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path, timeout=timeout)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._init_schema()

    # -- lifecycle ---------------------------------------------------------

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.executescript(_SCHEMA)
            # INSERT OR IGNORE keeps concurrent first-opens race-free: two
            # processes creating the same store file must not both insert.
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) "
                "VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            version = int(row["value"])
            if version == 1:
                version = self._add_columns(_V2_COLUMNS, target_version=2)
            if version == 2:
                version = self._add_columns(_V3_COLUMNS, target_version=3)
            if version != SCHEMA_VERSION:
                raise InvalidParameterError(
                    f"{self.path}: store schema version {version} "
                    f"!= supported {SCHEMA_VERSION}"
                )

    def _add_columns(self, columns: Sequence[str], target_version: int) -> int:
        """One in-place additive migration step: add ``columns`` (NULL for
        every pre-existing row) and stamp ``target_version``.

        v1 -> v2 added ``verdict``/``violation`` (pre-existing rows are
        unverified until a campaign or ``repro verify`` revisits them);
        v2 -> v3 adds ``metrics`` (pre-existing rows have no observability
        blob). Every other column is untouched, so earlier query results
        reproduce byte-identically on the pre-existing column set.
        Idempotent under concurrent first-opens (duplicate-column errors
        mean the other writer won)."""
        existing = {
            raw[1] for raw in self._conn.execute("PRAGMA table_info(runs)").fetchall()
        }
        for column in columns:
            if column.split()[0] in existing:
                continue
            try:
                self._conn.execute(f"ALTER TABLE runs ADD COLUMN {column}")
            except sqlite3.OperationalError as exc:  # pragma: no cover - race
                # Only a racing writer's completed ALTER is ignorable; a
                # lock timeout here must not stamp the version without the
                # columns.
                if "duplicate column" not in str(exc).lower():
                    raise
        self._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(target_version),),
        )
        return target_version

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def put(self, row: Mapping[str, Any]) -> None:
        """Insert or replace one run row (keyed by ``run_key``)."""
        self.put_many([row])

    def put_many(self, rows: Iterable[Mapping[str, Any]]) -> None:
        prepared = []
        for row in rows:
            if not row.get("run_key"):
                raise InvalidParameterError("store rows require a run_key")
            record = dict(row)
            record.setdefault("created_at", time.time())
            values = []
            for column in COLUMNS:
                value = record.get(column)
                if column in _JSON_COLUMNS:
                    value = json.dumps(value or {}, sort_keys=True)
                elif column == "metrics":
                    # NULL (not '{}') when absent: "no metrics" must stay
                    # distinguishable from "empty metrics" (pre-v3 rows).
                    value = (
                        None if value is None else json.dumps(value, sort_keys=True)
                    )
                elif column == "verified" and value is not None:
                    value = int(bool(value))
                values.append(value)
            prepared.append(tuple(values))
        placeholders = ", ".join("?" for _ in COLUMNS)
        with self._conn:
            self._conn.executemany(
                f"INSERT OR REPLACE INTO runs ({', '.join(COLUMNS)}) "
                f"VALUES ({placeholders})",
                prepared,
            )

    # -- reads -------------------------------------------------------------

    def _decode(self, raw: sqlite3.Row) -> Dict[str, Any]:
        row = dict(raw)
        for column in _JSON_COLUMNS:
            row[column] = json.loads(row[column]) if row.get(column) else {}
        if row.get("metrics") is not None:
            row["metrics"] = json.loads(row["metrics"])
        if row.get("verified") is not None:
            row["verified"] = bool(row["verified"])
        return row

    def get(self, run_key: str) -> Optional[Dict[str, Any]]:
        raw = self._conn.execute(
            "SELECT * FROM runs WHERE run_key = ?", (run_key,)
        ).fetchone()
        return None if raw is None else self._decode(raw)

    def __contains__(self, run_key: str) -> bool:
        return self.get(run_key) is not None

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def query(
        self,
        order_by: str = "run_key",
        include_errors: bool = True,
        unverified: bool = False,
        **filters: Any,
    ) -> List[Dict[str, Any]]:
        """Rows matching the equality ``filters`` (any of ``algorithm,
        family, workload, seed, engine, kind, code_version, verdict``),
        ordered deterministically. ``unverified=True`` restricts to rows
        with no verdict yet (pre-migration rows, ``verify=False``
        campaigns) — the ``repro verify`` work queue."""
        unknown = set(filters) - set(_FILTERS)
        if unknown:
            raise InvalidParameterError(
                f"unknown query filters {sorted(unknown)}; "
                f"available: {sorted(_FILTERS)}"
            )
        if order_by not in COLUMNS:
            raise InvalidParameterError(f"cannot order by {order_by!r}")
        clauses, values = [], []
        for column, value in filters.items():
            if value is None:
                continue
            clauses.append(f"{column} = ?")
            values.append(value)
        if not include_errors:
            clauses.append("error IS NULL")
        if unverified:
            clauses.append("verdict IS NULL")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            f"SELECT * FROM runs{where} ORDER BY {order_by}, run_key", values
        )
        return [self._decode(raw) for raw in cursor.fetchall()]

    def slowest(self, limit: int = 10, **filters: Any) -> List[Dict[str, Any]]:
        """The ``limit`` slowest rows by stored ``wall_ms``, descending
        (the ``repro query --slowest`` backend). Rows without a wall
        measurement (synthesized error rows) are excluded; whether a row
        carries a v3 ``metrics`` blob is the caller's concern."""
        if limit < 1:
            raise InvalidParameterError("slowest limit must be >= 1")
        rows = self.query(**filters)
        timed = [r for r in rows if r.get("wall_ms") is not None]
        timed.sort(key=lambda r: (-r["wall_ms"], r["run_key"]))
        return timed[:limit]

    def distinct(self, column: str) -> List[Any]:
        """Sorted distinct values of one column (for summaries/CLI)."""
        if column not in COLUMNS:
            raise InvalidParameterError(f"unknown column {column!r}")
        cursor = self._conn.execute(
            f"SELECT DISTINCT {column} FROM runs ORDER BY {column}"
        )
        return [raw[0] for raw in cursor.fetchall()]

    # -- meta --------------------------------------------------------------

    def set_meta(self, key: str, value: Any) -> None:
        """Persist one JSON-encoded entry in the ``meta`` table (the
        campaign runner stores its end-of-run summary here so ``repro
        stats`` can report cache-hit rates — information no per-row
        record can carry, since served-from-store cells never rewrite
        their rows). ``schema_version`` is the store's own key and is
        off-limits."""
        if key == "schema_version":
            raise InvalidParameterError("schema_version is store-managed")
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, json.dumps(value, sort_keys=True)),
            )

    def get_meta(self, key: str) -> Optional[Any]:
        """The decoded ``meta`` entry under ``key``, or ``None``."""
        raw = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if raw is None:
            return None
        try:
            return json.loads(raw["value"])
        except ValueError:
            return raw["value"]

    # -- maintenance -------------------------------------------------------

    def set_verdict(
        self, run_key: str, verdict: Optional[str], violation: Optional[str] = None
    ) -> bool:
        """Update one row's verification columns in place (the ``repro
        verify`` re-check path). The legacy ``verified`` flag is kept
        derived (``verdict == 'ok'``) so a re-checked row can never read
        ``verified`` and ``verdict`` contradictorily. Returns False when
        the key is absent."""
        verified = None if verdict is None else int(verdict == "ok")
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET verdict = ?, violation = ?, verified = ? "
                "WHERE run_key = ?",
                (verdict, violation, verified, run_key),
            )
        return cursor.rowcount > 0

    def gc(
        self,
        keep_code_version: Optional[str] = None,
        drop_errors: bool = True,
        drop_failed: bool = False,
        dry_run: bool = False,
        unseeded_workloads: Optional[Sequence[str]] = None,
    ) -> int:
        """Delete unreachable rows: entries from other code versions (their
        keys can never hit again), by default errored cells (so the next
        campaign retries them), optionally rows whose verification verdict
        is ``fail`` (``drop_failed`` — so the next campaign recomputes
        them with the fixed build), and — when ``unseeded_workloads``
        names the deterministic-topology workloads — rows stored under a
        nonzero seed for those workloads. Run keys normalize the seed of
        unseeded workloads to 0, so such rows predate that normalization
        and can never be addressed again. Returns the affected row count."""
        clauses, values = [], []
        if keep_code_version is not None:
            clauses.append("code_version != ?")
            values.append(keep_code_version)
        if drop_errors:
            clauses.append("error IS NOT NULL")
        if drop_failed:
            clauses.append("verdict = 'fail'")
        if unseeded_workloads:
            names = sorted(unseeded_workloads)
            placeholders = ", ".join("?" for _ in names)
            clauses.append(f"(workload IN ({placeholders}) AND seed != 0)")
            values.extend(names)
        if not clauses:
            return 0
        where = " OR ".join(clauses)
        if dry_run:
            return self._conn.execute(
                f"SELECT COUNT(*) FROM runs WHERE {where}", values
            ).fetchone()[0]
        with self._conn:
            cursor = self._conn.execute(f"DELETE FROM runs WHERE {where}", values)
        self._conn.execute("VACUUM")
        return cursor.rowcount
