"""Tests for Section 5 (Lemma 5.1, Theorems 5.2-5.4, Corollary 5.5)."""

import math

import networkx as nx
import pytest

from repro.analysis import verify_edge_coloring
from repro.errors import ColoringError, InvalidParameterError
from repro.graphs import (
    arboricity_bounds,
    erdos_renyi,
    forest_union,
    max_degree,
    planar_grid,
    random_bipartite_regular,
    random_tree,
    star_forest_stack,
    triangular_grid,
)
from repro.local import RoundLedger
from repro.core import (
    edge_color_bounded_arboricity,
    edge_color_delta_plus_o_delta,
    edge_color_orientation_connector,
    edge_color_recursive,
    merge_cross_edges,
)
from repro.types import edge_key


LOW_ARB_GRAPHS = {
    "tree-60": lambda: random_tree(60, seed=1),
    "grid-6x8": lambda: planar_grid(6, 8),
    "tri-grid-5x6": lambda: triangular_grid(5, 6),
    "forest-union-50-2": lambda: forest_union(50, 2, seed=2),
    "forest-union-40-3": lambda: forest_union(40, 3, seed=3),
    "star-stack": lambda: star_forest_stack(4, 12, 2, seed=4),
}


@pytest.fixture(params=sorted(LOW_ARB_GRAPHS))
def low_arb_graph(request):
    return LOW_ARB_GRAPHS[request.param]()


class TestMergeCrossEdges:
    def _bipartite_setup(self, n_each=8, d=3, seed=1):
        g = random_bipartite_regular(n_each, d, seed=seed)
        left, right = nx.bipartite.sets(g)
        side = {v: "A" for v in left}
        side.update({v: "B" for v in right})
        return g, side

    def test_lemma_5_1_bipartite(self):
        g, side = self._bipartite_setup()
        d_a = max(g.degree(v) for v, s in side.items() if s == "A")
        d_b = max(g.degree(v) for v, s in side.items() if s == "B")
        merged = merge_cross_edges(g, side, {}, palette=d_a + d_b - 1)
        verify_edge_coloring(g, merged, palette=d_a + d_b - 1)

    def test_rounds_are_2d(self):
        g, side = self._bipartite_setup(n_each=10, d=4, seed=2)
        ledger = RoundLedger()
        merge_cross_edges(g, side, {}, palette=16, ledger=ledger)
        d = max(g.degree(v) for v, s in side.items() if s == "A")
        assert ledger.total_actual <= 2 * d + 1

    def test_extends_existing_coloring(self):
        # A = one side with internal edges pre-colored
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])  # A-internal
        g.add_edges_from([(10, 11)])  # B-internal
        g.add_edges_from([(0, 10), (1, 11), (2, 10)])  # cross
        side = {0: "A", 1: "A", 2: "A", 3: "A", 10: "B", 11: "B"}
        base = {edge_key(0, 1): 0, edge_key(2, 3): 0, edge_key(10, 11): 1}
        merged = merge_cross_edges(g, side, base, palette=8)
        verify_edge_coloring(g, merged, palette=8)
        for e, c in base.items():
            assert merged[e] == c  # pre-colored edges untouched

    def test_uncolored_internal_edge_rejected(self):
        g = nx.Graph([(0, 1), (0, 10)])
        side = {0: "A", 1: "A", 10: "B"}
        with pytest.raises(InvalidParameterError):
            merge_cross_edges(g, side, {}, palette=8)

    def test_precolored_cross_edge_rejected(self):
        g = nx.Graph([(0, 10)])
        side = {0: "A", 10: "B"}
        with pytest.raises(InvalidParameterError):
            merge_cross_edges(g, side, {edge_key(0, 10): 0}, palette=8)

    def test_palette_exhaustion_detected(self):
        g = nx.star_graph(4)  # B center with 4 cross edges
        side = {0: "B", 1: "A", 2: "A", 3: "A", 4: "A"}
        with pytest.raises(ColoringError):
            merge_cross_edges(g, side, {}, palette=2)

    def test_no_cross_edges_noop(self):
        g = nx.Graph([(0, 1)])
        side = {0: "A", 1: "A"}
        base = {edge_key(0, 1): 0}
        assert merge_cross_edges(g, side, base, palette=4) == base


class TestTheorem52:
    def test_proper_and_bounded(self, low_arb_graph):
        a = arboricity_bounds(low_arb_graph).upper
        result = edge_color_bounded_arboricity(low_arb_graph, arboricity=a)
        verify_edge_coloring(low_arb_graph, result.coloring, palette=result.palette_bound)

    def test_delta_plus_o_a_colors(self):
        # palette is max(Delta + dhat, 4*Delta_internal) = Delta + O(a)
        g = star_forest_stack(5, 20, 2, seed=5)
        delta = max_degree(g)
        result = edge_color_bounded_arboricity(g, arboricity=2, q=3.0)
        assert result.colors_used <= delta + 3 * math.ceil(3.0 * 2) + 1

    def test_rounds_scale_with_a_log_n(self):
        g = forest_union(100, 2, seed=6)
        ledger = RoundLedger()
        result = edge_color_bounded_arboricity(g, arboricity=2, ledger=ledger)
        # O(a log n) with small constants; generous ceiling
        assert result.rounds_actual <= 60 * math.log2(100)

    def test_reuses_precomputed_partition(self):
        from repro.substrates import h_partition

        g = forest_union(40, 2, seed=7)
        hp = h_partition(g, arboricity=2)
        result = edge_color_bounded_arboricity(g, arboricity=2, partition=hp)
        verify_edge_coloring(g, result.coloring)
        assert result.dhat == hp.threshold

    def test_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        result = edge_color_bounded_arboricity(g)
        assert result.coloring == {}

    def test_bad_arboricity_rejected(self):
        with pytest.raises(InvalidParameterError):
            edge_color_bounded_arboricity(nx.path_graph(3), arboricity=0)


class TestTheorem53:
    def test_proper_and_bounded(self, low_arb_graph):
        a = arboricity_bounds(low_arb_graph).upper
        result = edge_color_orientation_connector(low_arb_graph, arboricity=a)
        verify_edge_coloring(low_arb_graph, result.coloring, palette=result.palette_bound)

    def test_product_structure(self):
        # colors <= (sqrt(Delta)+O(sqrt(a)))^2 = Delta + O(sqrt(Delta a))
        g = star_forest_stack(6, 24, 2, seed=8)
        delta = max_degree(g)
        result = edge_color_orientation_connector(g, arboricity=2)
        assert result.colors_used <= delta + 14 * math.sqrt(delta * 6) + 40

    def test_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        result = edge_color_orientation_connector(g)
        assert result.coloring == {}


class TestTheorem54:
    @pytest.mark.parametrize("x", [1, 2, 3])
    def test_proper_for_all_depths(self, x):
        g = forest_union(40, 2, seed=9)
        result = edge_color_recursive(g, x=x, arboricity=2)
        verify_edge_coloring(g, result.coloring, palette=result.palette_bound)

    def test_bound_formula(self):
        g = forest_union(50, 2, seed=10)
        result = edge_color_recursive(g, x=2, arboricity=2)
        factor = math.ceil(result.delta ** 0.5) + math.ceil(result.dhat**0.5) + 3
        assert result.palette_bound == factor**2

    def test_x_validation(self):
        with pytest.raises(InvalidParameterError):
            edge_color_recursive(nx.path_graph(3), x=0)

    def test_x1_equals_thm52_palette_family(self):
        g = forest_union(40, 2, seed=11)
        result = edge_color_recursive(g, x=1, arboricity=2)
        verify_edge_coloring(g, result.coloring)


class TestCorollary55:
    def test_proper(self, low_arb_graph):
        result = edge_color_delta_plus_o_delta(low_arb_graph)
        verify_edge_coloring(low_arb_graph, result.coloring)
        assert result.params is not None

    def test_overhead_shrinks_with_delta_over_a_gap(self):
        # the flagship claim: Delta >> a => colors approach Delta
        small_gap = erdos_renyi(30, 0.3, seed=12)  # a close to Delta
        big_gap = star_forest_stack(5, 30, 2, seed=13)  # Delta >> a
        r_small = edge_color_delta_plus_o_delta(small_gap)
        r_big = edge_color_delta_plus_o_delta(
            big_gap, arboricity=arboricity_bounds(big_gap).upper
        )
        assert r_big.overhead_over_delta < max(r_small.overhead_over_delta, 2.0)
        assert r_big.overhead_over_delta < 1.0

    def test_thm52_dominates_for_tiny_x(self):
        g = random_tree(40, seed=14)
        result = edge_color_delta_plus_o_delta(g, arboricity=1)
        verify_edge_coloring(g, result.coloring)
