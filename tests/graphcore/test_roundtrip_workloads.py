"""Property suite: the full compact pipeline is the identity on every
builtin workload.

For each registered (non-xl) workload — scale family size-reduced through
its declared parameters, like the invariant-fuzz suite — the chain

    from_networkx -> save -> load(mmap=True) -> to_networkx

must reproduce the original graph exactly (nodes, edges, labels, node
attributes: ``nx.utils.graphs_equal``), and every representation along
the way must agree on the content digest. The xl family is compact-native
(no nx original to compare against); its size-reduced instances round-trip
through the file format instead.
"""

import networkx as nx
import pytest

from repro import workloads
from repro.graphcore import CompactGraph, load, save

#: Scale workloads at interactive sizes (same generators, smaller n).
_REDUCED = {
    "scale-regular": {"n": 64, "d": 4},
    "scale-power-law": {"n": 64, "attach": 2},
    "scale-forest-stack": {"n_centers": 6, "leaves_per_center": 9, "a": 2},
    "scale-grid": {"rows": 8, "cols": 8},
}

_NX_WORKLOADS = [s.name for s in workloads.specs() if not s.compact]
_XL_WORKLOADS = [s.name for s in workloads.specs() if s.compact]

_XL_REDUCED = {
    "xl-regular": {"n": 256, "d": 8},
    "xl-power-law": {"n": 256, "attach": 3},
    "xl-forest-stack": {"n_centers": 8, "leaves_per_center": 12, "a": 2},
    "xl-grid": {"rows": 16, "cols": 16},
}


class TestRoundTripIsIdentity:
    @pytest.mark.parametrize("name", _NX_WORKLOADS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_nx_workload_round_trips(self, name, seed, tmp_path):
        original = workloads.build(name, _REDUCED.get(name), seed=seed)
        compact = CompactGraph.from_networkx(original)
        path = tmp_path / "w.csrg"
        digest = save(compact, path)
        mapped = load(path, mmap=True)
        assert mapped.digest() == digest == compact.digest()
        restored = mapped.to_networkx()
        assert nx.utils.graphs_equal(restored, original)
        # and the restored graph interns back to the same content address
        assert CompactGraph.from_networkx(restored).digest() == digest

    @pytest.mark.parametrize("name", _XL_WORKLOADS)
    def test_xl_workload_round_trips(self, name, tmp_path):
        compact = workloads.build(name, _XL_REDUCED[name], seed=0)
        path = tmp_path / "w.csrg"
        digest = save(compact, path)
        for mmap in (False, True):
            again = load(path, mmap=mmap)
            assert again.digest() == digest
            assert nx.utils.graphs_equal(again.to_networkx(), compact.to_networkx())

    def test_catalogue_is_complete(self):
        # the suite above covers every registered builtin workload
        assert len(_NX_WORKLOADS) == 21
        assert set(_XL_WORKLOADS) == set(_XL_REDUCED)
