"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import (
    complete_graph,
    cycle,
    disjoint_cliques,
    erdos_renyi,
    forest_union,
    hypercube,
    path,
    planar_grid,
    random_regular,
    random_tree,
    shared_vertex_cliques,
    triangular_grid,
)


def _isolated_plus_edges() -> nx.Graph:
    graph = nx.Graph([(0, 1), (2, 3)])
    graph.add_nodes_from([10, 11])
    return graph


# A diverse small-graph menagerie: (name -> graph factory). Kept small so the
# whole suite runs in minutes while still covering degenerate shapes.
SMALL_GRAPHS = {
    "empty": nx.Graph,
    "single": lambda: nx.path_graph(1),
    "one-edge": lambda: nx.path_graph(2),
    "path-7": lambda: path(7),
    "cycle-8": lambda: cycle(8),
    "cycle-9": lambda: cycle(9),
    "star-9": lambda: nx.star_graph(9),
    "k5": lambda: complete_graph(5),
    "k8": lambda: complete_graph(8),
    "petersen": nx.petersen_graph,
    "grid-4x5": lambda: planar_grid(4, 5),
    "tri-grid-4x4": lambda: triangular_grid(4, 4),
    "hypercube-4": lambda: hypercube(4),
    "tree-20": lambda: random_tree(20, seed=4),
    "gnp-30": lambda: erdos_renyi(30, 0.2, seed=5),
    "gnp-60-sparse": lambda: erdos_renyi(60, 0.06, seed=6),
    "regular-24-6": lambda: random_regular(24, 6, seed=7),
    "forest-union-40-3": lambda: forest_union(40, 3, seed=8),
    "cliques-3x5": lambda: disjoint_cliques(3, 5),
    "shared-cliques": lambda: shared_vertex_cliques(5, 3),
    "isolated+edges": _isolated_plus_edges,
}

_NONEMPTY = [name for name in sorted(SMALL_GRAPHS) if SMALL_GRAPHS[name]().number_of_edges() > 0]


def small_graph(name: str) -> nx.Graph:
    return SMALL_GRAPHS[name]()


@pytest.fixture(params=sorted(SMALL_GRAPHS))
def any_graph(request) -> nx.Graph:
    """Parametrized over the whole menagerie."""
    return small_graph(request.param)


@pytest.fixture(params=_NONEMPTY)
def nonempty_graph(request) -> nx.Graph:
    """Parametrized over graphs with at least one edge."""
    return small_graph(request.param)
