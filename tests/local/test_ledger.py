"""Tests for the round ledger's sequential/parallel composition."""

import pytest

from repro.local import RoundLedger


class TestSequential:
    def test_totals_add(self):
        ledger = RoundLedger()
        ledger.add("a", 3)
        ledger.add("b", 4.5)
        assert ledger.total_actual == 7.5
        assert ledger.total_modeled == 7.5

    def test_modeled_tracked_separately(self):
        ledger = RoundLedger()
        ledger.add("oracle", actual=100, modeled=12)
        assert ledger.total_actual == 100
        assert ledger.total_modeled == 12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().add("bad", -1)

    def test_empty_totals_zero(self):
        ledger = RoundLedger()
        assert ledger.total_actual == 0
        assert ledger.total_modeled == 0


class TestParallel:
    def test_parallel_takes_max(self):
        ledger = RoundLedger()
        with ledger.parallel("classes") as scope:
            scope.branch("c0").add("w", 5)
            scope.branch("c1").add("w", 9)
            scope.branch("c2").add("w", 2)
        assert ledger.total_actual == 9

    def test_parallel_max_is_per_branch_total(self):
        ledger = RoundLedger()
        with ledger.parallel("p") as scope:
            b = scope.branch("long")
            b.add("s1", 4)
            b.add("s2", 4)
            scope.branch("short").add("s", 7)
        assert ledger.total_actual == 8

    def test_parallel_actual_and_modeled_independent(self):
        ledger = RoundLedger()
        with ledger.parallel("p") as scope:
            scope.branch("a").add("w", actual=10, modeled=1)
            scope.branch("b").add("w", actual=1, modeled=10)
        assert ledger.total_actual == 10
        assert ledger.total_modeled == 10

    def test_empty_scope_costs_nothing(self):
        ledger = RoundLedger()
        with ledger.parallel("none"):
            pass
        assert ledger.total_actual == 0

    def test_sequential_after_parallel(self):
        ledger = RoundLedger()
        ledger.add("pre", 2)
        with ledger.parallel("p") as scope:
            scope.branch("x").add("w", 3)
        ledger.add("post", 1)
        assert ledger.total_actual == 6

    def test_nested_parallel(self):
        ledger = RoundLedger()
        with ledger.parallel("outer") as outer:
            branch = outer.branch("b")
            with branch.parallel("inner") as inner:
                inner.branch("i1").add("w", 4)
                inner.branch("i2").add("w", 6)
            branch.add("tail", 1)
        assert ledger.total_actual == 7

    def test_summary_mentions_entries(self):
        ledger = RoundLedger()
        ledger.add("phase-1", 3)
        assert "phase-1" in ledger.summary()
