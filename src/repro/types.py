"""Shared type aliases and small helpers used across the library.

The library follows networkx conventions: vertices are hashable objects
(plain ``int`` for input graphs, tuples for virtual vertices of connectors),
and an undirected edge is represented by a normalized 2-tuple so that the
same edge always hashes identically regardless of traversal direction.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

NodeId = Hashable
Color = int
Edge = Tuple[NodeId, NodeId]
VertexColoring = Dict[NodeId, Color]
EdgeColoring = Dict[Edge, Color]


def edge_key(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (order-independent) representation of edge (u, v).

    Vertices inside a single graph are homogeneous (all ints, or all tuples of
    the same shape), so ``<`` is used directly; heterogeneous fallback orders
    by ``repr`` so that connector graphs mixing id shapes still normalize
    deterministically.
    """
    if u == v:
        raise ValueError(f"self-loop ({u!r}, {v!r}) is not a valid edge")
    try:
        return (u, v) if u < v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) < repr(v) else (v, u)


def normalize_edge_coloring(coloring: Dict[Any, Color]) -> EdgeColoring:
    """Re-key an edge coloring by canonical edge keys."""
    return {edge_key(u, v): c for (u, v), c in coloring.items()}


def num_colors(coloring: Dict[Any, Color]) -> int:
    """Number of distinct colors used by a coloring (0 for empty)."""
    return len(set(coloring.values())) if coloring else 0
