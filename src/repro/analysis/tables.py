"""Harnesses regenerating the paper's Tables 1 and 2 and the Section 5
results on concrete workloads.

Each ``run_*`` function executes the paper's algorithm on generated graphs,
verifies properness and the color bound, and returns
:class:`~repro.analysis.metrics.ExperimentRecord` rows carrying both measured
values (colors, simulator rounds) and the modeled round bounds the paper's
tables are stated in. ``python -m repro.analysis.tables`` prints everything.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.analysis.metrics import ExperimentRecord
from repro.analysis.verify import verify_edge_coloring, verify_vertex_coloring
from repro.baselines import (
    degree_splitting_edge_coloring,
    greedy_edge_coloring,
    misra_gries_edge_coloring,
    table1_row,
    table2_row,
)
from repro.core import (
    cd_coloring,
    edge_color_bounded_arboricity,
    edge_color_delta_plus_o_delta,
    edge_color_orientation_connector,
    edge_color_recursive,
    star_partition_edge_coloring,
)
from repro.graphs import (
    forest_union,
    line_graph_with_cover,
    max_degree,
    random_regular,
    random_uniform_hypergraph,
    star_forest_stack,
)
from repro.local import RoundLedger


def run_table1(
    deltas: Sequence[int] = (8, 16, 24),
    x_values: Sequence[int] = (1, 2, 3),
    n: int = 96,
    seed: int = 7,
) -> List[ExperimentRecord]:
    """Table 1: (2^(x+1) Delta)-edge-coloring of general (regular) graphs,
    vs. the analytic previous [7]+[17] bound."""
    records: List[ExperimentRecord] = []
    for delta in deltas:
        nodes = n if (n * delta) % 2 == 0 else n + 1
        graph = random_regular(nodes, delta, seed=seed)
        for x in x_values:
            ledger = RoundLedger()
            result = star_partition_edge_coloring(graph, x=x, ledger=ledger)
            verify_edge_coloring(graph, result.coloring, palette=result.target_colors)
            previous = table1_row(delta, nodes, x)
            records.append(
                ExperimentRecord(
                    experiment="table1",
                    workload=f"random-regular(n={nodes}, d={delta})",
                    n=nodes,
                    m=graph.number_of_edges(),
                    delta=delta,
                    params={"x": x},
                    colors_used=result.colors_used,
                    colors_bound=result.target_colors,
                    rounds_actual=result.rounds_actual,
                    rounds_modeled=result.rounds_modeled,
                    baseline_colors=previous.previous_colors,
                    baseline_rounds=previous.previous_rounds,
                )
            )
    return records


def run_table2(
    configs: Sequence[Dict] = (
        {"diversity": 2, "delta": 8},
        {"diversity": 2, "delta": 16},
        {"diversity": 3, "delta": 8},
        {"diversity": 4, "delta": 6},
    ),
    x_values: Sequence[int] = (1, 2, 3),
    seed: int = 11,
) -> List[ExperimentRecord]:
    """Table 2: (D^(x+1) S)-vertex-coloring of bounded-diversity graphs.

    D = 2 instances are line graphs of regular graphs; D = c instances are
    line graphs of c-uniform hypergraphs.
    """
    records: List[ExperimentRecord] = []
    for config in configs:
        diversity = config["diversity"]
        delta = config["delta"]
        if diversity == 2:
            base = random_regular(48 if (48 * delta) % 2 == 0 else 49, delta, seed=seed)
            graph, cover = line_graph_with_cover(base)
            workload = f"line-graph(regular d={delta})"
        else:
            hyper = random_uniform_hypergraph(
                n=40, num_edges=20 * delta, c=diversity, seed=seed
            )
            graph, cover = hyper.line_graph_with_cover()
            workload = f"hypergraph-line({diversity}-uniform)"
        d_measured = cover.diversity()
        s_measured = cover.max_clique_size()
        for x in x_values:
            ledger = RoundLedger()
            result = cd_coloring(graph, cover, x=x, ledger=ledger)
            verify_vertex_coloring(graph, result.coloring)
            previous = table2_row(
                d_measured, s_measured, max_degree(graph), graph.number_of_nodes(), x
            )
            records.append(
                ExperimentRecord(
                    experiment="table2",
                    workload=workload,
                    n=graph.number_of_nodes(),
                    m=graph.number_of_edges(),
                    delta=max_degree(graph),
                    params={"x": x, "D": d_measured, "S": s_measured},
                    colors_used=result.colors_used,
                    colors_bound=max(result.target_colors, result.palette_bound),
                    rounds_actual=result.rounds_actual,
                    rounds_modeled=result.rounds_modeled,
                    baseline_colors=previous.previous_colors,
                    baseline_rounds=previous.previous_rounds,
                )
            )
    return records


def run_section5(
    arboricities: Sequence[int] = (2, 3),
    seed: int = 13,
    include_recursive: bool = True,
) -> List[ExperimentRecord]:
    """Section 5: the (Delta + o(Delta)) pipeline on low-arboricity graphs,
    with centralized Vizing and greedy baselines for the color counts."""
    records: List[ExperimentRecord] = []
    for a in arboricities:
        graph = star_forest_stack(n_centers=6, leaves_per_center=24, a=a, seed=seed)
        delta = max_degree(graph)
        workload = f"star-forest-stack(a={a}, Delta={delta})"
        vizing = misra_gries_edge_coloring(graph)
        greedy = greedy_edge_coloring(graph)
        baseline_colors = len(set(vizing.values()))
        greedy_colors = len(set(greedy.values()))

        runs = [
            ("thm5.2", lambda: edge_color_bounded_arboricity(graph, arboricity=a)),
            ("thm5.3", lambda: edge_color_orientation_connector(graph, arboricity=a)),
        ]
        if include_recursive:
            runs.append(
                ("thm5.4(x=2)", lambda: edge_color_recursive(graph, x=2, arboricity=a))
            )
            runs.append(
                ("cor5.5", lambda: edge_color_delta_plus_o_delta(graph, arboricity=a))
            )
        for name, run in runs:
            result = run()
            verify_edge_coloring(graph, result.coloring)
            records.append(
                ExperimentRecord(
                    experiment=name,
                    workload=workload,
                    n=graph.number_of_nodes(),
                    m=graph.number_of_edges(),
                    delta=delta,
                    params={"a": a, "dhat": result.dhat},
                    colors_used=result.colors_used,
                    colors_bound=result.palette_bound or None,
                    rounds_actual=result.rounds_actual,
                    rounds_modeled=result.rounds_modeled,
                    baseline_colors=baseline_colors,
                    notes=f"greedy(2D-1)={greedy_colors}",
                )
            )
        split = degree_splitting_edge_coloring(graph)
        verify_edge_coloring(graph, split.coloring)
        records.append(
            ExperimentRecord(
                experiment="baseline-degree-splitting",
                workload=workload,
                n=graph.number_of_nodes(),
                m=graph.number_of_edges(),
                delta=delta,
                params={"a": a},
                colors_used=split.colors_used,
                colors_bound=None,
                rounds_modeled=split.rounds_modeled,
                baseline_colors=baseline_colors,
            )
        )
    return records


def _print_records(title: str, records: List[ExperimentRecord]) -> None:
    from repro.analysis.metrics import records_to_markdown

    print(f"\n## {title}\n")
    print(
        records_to_markdown(
            records,
            [
                "experiment",
                "workload",
                "delta",
                "param_x",
                "colors_used",
                "colors_bound",
                "within_bound",
                "rounds_actual",
                "rounds_modeled",
                "baseline_colors",
                "baseline_rounds",
            ],
        )
    )


#: Default column order for rendering experiment-store query rows.
#: ``compute_ms`` comes from the schema-v3 metrics blob (hoisted by the
#: dataframes join; "—" on pre-v3 rows) and ``verdict`` from the store's
#: verification column — the table discloses kernel time and
#: verification state, not just the run's shape.
CELL_ROW_COLUMNS = (
    "algorithm",
    "workload",
    "seed",
    "engine",
    "n",
    "m",
    "colors_used",
    "rounds_actual",
    "rounds_modeled",
    "compute_ms",
    "verdict",
    "error",
)


def cell_rows_markdown(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] = CELL_ROW_COLUMNS,
) -> str:
    """Render experiment-store query rows (plain dicts — the output of
    :meth:`repro.store.ExperimentStore.query`) as a GitHub-flavoured
    markdown table, the same surface the ExperimentRecord tables use.
    Rows go through :func:`repro.analysis.dataframes.cell_frame`, so
    metrics-blob columns (``compute_ms``, …) are addressable like any
    store column."""
    from repro.analysis.dataframes import cell_frame
    from repro.analysis.metrics import _fmt

    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_fmt(row.get(column)) for column in columns) + " |"
        for row in cell_frame(rows)
    ]
    return "\n".join([header, rule, *body])


def main() -> None:  # pragma: no cover - CLI entry point
    _print_records("Table 1 — edge coloring of general graphs", run_table1())
    _print_records("Table 2 — vertex coloring, bounded diversity", run_table2())
    _print_records("Section 5 — bounded arboricity", run_section5())


if __name__ == "__main__":  # pragma: no cover
    main()
