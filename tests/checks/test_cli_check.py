"""`repro check` CLI: exit codes, --json shape, --list, --update-baseline."""

import json

from repro.cli import main

_CLEAN = {
    "store/store.py": """\
    SCHEMA_VERSION = 1

    STABLE_COLUMNS = ("run_key",)
    """
}

_DIRTY = {
    "kernels/bad.py": """\
    def f(mods):
        for m in set(mods):
            use(m)
    """
}


def test_check_exits_zero_on_clean_tree(make_project, capsys):
    root = make_project(_CLEAN)
    assert main(["check", "--root", str(root), "--update-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out


def test_check_exits_nonzero_and_names_file_line(make_project, capsys):
    root = make_project(_DIRTY)
    assert main(["check", "--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "src/repro/kernels/bad.py:2: det-set-iteration" in out


def test_check_json_report(make_project, capsys):
    root = make_project(_DIRTY)
    assert main(["check", "--root", str(root), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["fired"] == 1
    assert payload["violations"][0]["rule"] == "det-set-iteration"
    assert payload["violations"][0]["line"] == 2


def test_check_rule_filter(make_project, capsys):
    root = make_project(_DIRTY)
    # Filtered to an unrelated rule, the dirty tree is clean.
    assert main(["check", "--root", str(root), "--rule", "det-wallclock"]) == 0
    capsys.readouterr()


def test_check_list_prints_catalogue(capsys):
    assert main(["check", "--list"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "det-unseeded-rng",
        "det-set-iteration",
        "det-wallclock",
        "reg-spec-invariants",
        "reg-kernel-module",
        "reg-compact-parity",
        "pure-kernel-networkx",
        "pure-kernel-node-loop",
        "pure-csr-mutation",
        "exc-blind-except",
        "schema-freeze",
        "fork-global-write",
        "waiver-syntax",
    ):
        assert rule in out


def test_check_update_baseline_writes_and_greens(make_project, capsys):
    root = make_project(_CLEAN)
    assert main(["check", "--root", str(root)]) == 1  # missing baseline
    capsys.readouterr()
    assert main(["check", "--root", str(root), "--update-baseline"]) == 0
    out = capsys.readouterr().out
    assert "schema_baseline.json" in out
    baseline = root / "src" / "repro" / "checks" / "schema_baseline.json"
    assert json.loads(baseline.read_text())["store"]["version"] == 1
    assert main(["check", "--root", str(root)]) == 0
