"""CSR first-fit greedy sweeps for the centralized baselines.

Greedy coloring is inherently sequential — each pick depends on every
earlier pick — so these are *sweep* kernels, not round kernels: the win
comes from (a) computing the repr sweep order vectorized instead of
sorting a million Python objects, and (b) running the first-fit loop
over flat CSR arrays with a stamp-array palette instead of per-node
Python sets. With numba active (``REPRO_NUMBA``) the sweep loop JITs to
machine code; without it the same loop runs over plain Python lists.

Both sweeps reproduce the baseline implementations in
:mod:`repro.baselines.greedy` bit-for-bit: same order (ids sorted by
``repr``; edges by the repr pair), same first-fit rule, same dict
insertion order.
"""

from __future__ import annotations

# repro-check: file ok pure-kernel-node-loop — greedy first-fit is inherently
# sequential (each pick depends on every earlier pick); the sweep loops here
# are the algorithm, JIT-compiled via numba when available, not accidental
# per-node dispatch

from typing import Any, Dict, Tuple

import numpy as np

from repro.kernels.backend import maybe_jit, numba_enabled
from repro.kernels.segments import repr_rank_order


def _vertex_sweep_py(indptr, indices, order, limit: int):
    n = len(indptr) - 1
    colors = [-1] * n
    stamp = [-1] * (limit + 2)
    for v in order:
        for j in range(indptr[v], indptr[v + 1]):
            c = colors[indices[j]]
            if c >= 0:
                stamp[c] = v
        c = 0
        while stamp[c] == v:
            c += 1
        colors[v] = c
    return colors


def _vertex_sweep_arrays(indptr, indices, order, colors, stamp):
    for k in range(order.size):
        v = order[k]
        for j in range(indptr[v], indptr[v + 1]):
            c = colors[indices[j]]
            if c >= 0:
                stamp[c] = v
        c = 0
        while stamp[c] == v:
            c += 1
        colors[v] = c
    return colors


def greedy_vertex_compact(graph: Any) -> Dict[int, int]:
    """First-fit vertex coloring of a CompactGraph in repr order —
    the vectorized twin of ``greedy_vertex_coloring``'s default sweep."""
    n = graph.n
    order = repr_rank_order(n)
    limit = graph.max_degree + 1
    if numba_enabled():  # pragma: no cover - depends on the environment
        sweep = maybe_jit(_vertex_sweep_arrays)
        colors = sweep(
            graph.indptr,
            graph.indices.astype(np.int64, copy=False),
            order,
            np.full(n, -1, dtype=np.int64),
            np.full(limit + 2, -1, dtype=np.int64),
        )
        colors = colors.tolist()
    else:
        colors = _vertex_sweep_py(
            graph.indptr.tolist(), graph.indices.tolist(), order.tolist(), limit
        )
    order_list = order.tolist()
    return dict(zip(order_list, (colors[v] for v in order_list)))


def _sorted_edge_arrays(graph: Any) -> Tuple[np.ndarray, np.ndarray]:
    """Each undirected edge once as ``(u, v)`` with ``u < v``, sorted by
    the repr pair — the baseline's edge sweep order, computed without
    materializing tuples."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices.astype(np.int64, copy=False)
    keep = src < dst
    e_u, e_v = src[keep], dst[keep]
    rank = np.empty(graph.n, dtype=np.int64)
    rank[repr_rank_order(graph.n)] = np.arange(graph.n, dtype=np.int64)
    idx = np.lexsort((rank[e_v], rank[e_u]))
    return e_u[idx], e_v[idx]


def greedy_edge_compact(graph: Any) -> Dict[Tuple[int, int], int]:
    """First-fit edge coloring of a CompactGraph — the vectorized twin of
    ``greedy_edge_coloring``'s default sweep."""
    e_u, e_v = _sorted_edge_arrays(graph)
    u_list, v_list = e_u.tolist(), e_v.tolist()
    incident = [set() for _ in range(graph.n)]
    coloring: Dict[Tuple[int, int], int] = {}
    for u, v in zip(u_list, v_list):
        used_u, used_v = incident[u], incident[v]
        color = 0
        while color in used_u or color in used_v:
            color += 1
        coloring[(u, v)] = color
        used_u.add(color)
        used_v.add(color)
    return coloring
