"""Engine-parity suite: every registered algorithm must produce identical
outputs, round counts, and message counts under ``ReferenceEngine`` and
``VectorEngine``.

This is the contract that lets the vector engine skip sleep-hinted no-op
steps: if a hint ever lies (a skipped step would have acted), outputs or
message profiles diverge and these tests fail.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro import registry
from repro.engine import get_engine
from repro.graphs import (
    cycle,
    erdos_renyi,
    line_graph_with_cover,
    path,
    planar_grid,
    random_regular,
    random_tree,
)
from repro.substrates.linial import LinialAlgorithm, linial_coloring
from repro.substrates.reduction import (
    BasicReductionAlgorithm,
    BlockedReductionAlgorithm,
)


def _isolated_plus_edges() -> nx.Graph:
    graph = nx.Graph([(0, 1), (2, 3)])
    graph.add_nodes_from([10, 11])
    return graph


# Corpus: small but diverse — regular, sparse, degenerate, disconnected.
_CORPUS = {
    "one-edge": lambda: path(2),
    "path-7": lambda: path(7),
    "cycle-9": lambda: cycle(9),
    "star-9": lambda: nx.star_graph(9),
    "k5": lambda: nx.complete_graph(5),
    "petersen": nx.petersen_graph,
    "grid-4x5": lambda: planar_grid(4, 5),
    "tree-20": lambda: random_tree(20, seed=4),
    "gnp-30": lambda: erdos_renyi(30, 0.2, seed=5),
    "regular-24-6": lambda: random_regular(24, 6, seed=7),
    "isolated+edges": _isolated_plus_edges,
}
PARITY_GRAPHS = tuple(sorted(_CORPUS))


def small_graph(name: str) -> nx.Graph:
    return _CORPUS[name]()

# Algorithms runnable on any plain graph. ``cole-vishkin`` (needs a forest)
# and ``thm54`` (slow at this scale) get dedicated cases below.
GENERAL_ALGORITHMS = [
    name for name in registry.names() if name not in ("cole-vishkin", "thm54")
]


def run_both(name: str, graph, **params):
    ref = registry.run(name, graph, engine="reference", **params)
    vec = registry.run(name, graph, engine="vector", **params)
    return ref, vec


def assert_same_run(ref: registry.AlgorithmRun, vec: registry.AlgorithmRun) -> None:
    assert vec.coloring == ref.coloring
    assert vec.colors_used == ref.colors_used
    assert vec.rounds_actual == ref.rounds_actual
    assert vec.rounds_modeled == ref.rounds_modeled
    assert vec.extra == ref.extra


class TestRegistryParity:
    @pytest.mark.parametrize("graph_name", PARITY_GRAPHS)
    @pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
    def test_identical_runs(self, algorithm, graph_name):
        graph = small_graph(graph_name)
        assert_same_run(*run_both(algorithm, graph))

    def test_cole_vishkin_on_forest(self):
        forest = random_tree(24, seed=9)
        assert_same_run(*run_both("cole-vishkin", forest))

    def test_thm54_recursive(self):
        graph = small_graph("regular-24-6")
        assert_same_run(*run_both("thm54", graph, x=2, arboricity=3))

    @pytest.mark.parametrize("x", (1, 2))
    def test_star_depths(self, x):
        graph = random_regular(24, 8, seed=3)
        assert_same_run(*run_both("star", graph, x=x))

    def test_randomized_seeded(self):
        graph = random_regular(24, 6, seed=5)
        assert_same_run(*run_both("randomized", graph, seed=11))


class TestEngineLevelParity:
    """Full RunResult equality (outputs, rounds, messages, per-round
    profile) on the protocols that publish sleep hints."""

    def assert_runs_equal(self, graph, algorithm, extras):
        ref = get_engine("reference").run(graph, algorithm, extras=extras)
        vec = get_engine("vector").run(graph, algorithm, extras=extras)
        assert vec.outputs == ref.outputs
        assert vec.rounds == ref.rounds
        assert vec.messages == ref.messages
        assert vec.round_messages == ref.round_messages
        assert vec.crashed == ref.crashed

    @pytest.mark.parametrize("graph_name", PARITY_GRAPHS)
    def test_basic_reduction(self, graph_name):
        graph = small_graph(graph_name)
        ordered = sorted(graph.nodes(), key=repr)
        coloring = {v: i for i, v in enumerate(ordered)}
        delta = max((d for _, d in graph.degree()), default=0)
        self.assert_runs_equal(
            graph,
            BasicReductionAlgorithm(),
            {"coloring": coloring, "m": len(ordered), "target": delta + 1},
        )

    @pytest.mark.parametrize("graph_name", PARITY_GRAPHS)
    def test_blocked_reduction(self, graph_name):
        graph = small_graph(graph_name)
        ordered = sorted(graph.nodes(), key=repr)
        coloring = {v: i for i, v in enumerate(ordered)}
        delta = max((d for _, d in graph.degree()), default=0)
        self.assert_runs_equal(
            graph,
            BlockedReductionAlgorithm(),
            {"coloring": coloring, "block": 2 * (delta + 1), "palette": delta + 1},
        )

    def test_linial_line_graph(self):
        line, _ = line_graph_with_cover(random_regular(20, 4, seed=2))
        initial = {v: i for i, v in enumerate(sorted(line.nodes(), key=repr))}
        self.assert_runs_equal(
            line,
            LinialAlgorithm(),
            {"initial_coloring": initial, "m0": len(initial)},
        )


class TestCrashAndBandwidthParity:
    """The vector engine's own crash path (`engine/vector.py`) against the
    reference fail-stop semantics: identical outputs, `crashed` sets,
    round counts, per-round message profiles, and bandwidth accounting
    under mid-run crashes — including crashes of *sleeping* nodes, which
    only the vector engine schedules specially."""

    def assert_crash_parity(self, graph, algorithm, extras, crashes):
        ref = get_engine("reference").run(
            graph, algorithm, extras=dict(extras),
            crashes=dict(crashes), track_bandwidth=True,
        )
        vec = get_engine("vector").run(
            graph, algorithm, extras=dict(extras),
            crashes=dict(crashes), track_bandwidth=True,
        )
        assert vec.outputs == ref.outputs
        assert vec.crashed == ref.crashed
        assert vec.rounds == ref.rounds
        assert vec.messages == ref.messages
        assert vec.round_messages == ref.round_messages
        assert vec.max_message_bits == ref.max_message_bits
        return ref

    @staticmethod
    def reduction_extras(graph):
        ordered = sorted(graph.nodes(), key=repr)
        coloring = {v: i for i, v in enumerate(ordered)}
        delta = max((d for _, d in graph.degree()), default=0)
        return ordered, {"coloring": coloring, "m": len(ordered), "target": delta + 1}

    @pytest.mark.parametrize("graph_name", PARITY_GRAPHS)
    def test_staggered_midrun_crashes(self, graph_name):
        graph = small_graph(graph_name)
        ordered, extras = self.reduction_extras(graph)
        # every third node fail-stops at a staggered mid-run round; under
        # the reduction schedule most of these nodes are sleeping when
        # their crash round arrives
        crashes = {v: (i % 4) + 2 for i, v in enumerate(ordered[::3])}
        ref = self.assert_crash_parity(graph, BasicReductionAlgorithm(), extras, crashes)
        if ref.rounds >= 5:
            assert ref.crashed  # the schedule actually fired mid-run

    @pytest.mark.parametrize("graph_name", ("cycle-9", "gnp-30", "regular-24-6"))
    def test_blocked_reduction_crashes(self, graph_name):
        graph = small_graph(graph_name)
        ordered = sorted(graph.nodes(), key=repr)
        coloring = {v: i for i, v in enumerate(ordered)}
        delta = max(d for _, d in graph.degree())
        extras = {"coloring": coloring, "block": 2 * (delta + 1), "palette": delta + 1}
        crashes = {v: (i % 3) + 1 for i, v in enumerate(ordered[::4])}
        self.assert_crash_parity(graph, BlockedReductionAlgorithm(), extras, crashes)

    def test_linial_with_crashes(self):
        line, _ = line_graph_with_cover(random_regular(20, 4, seed=2))
        ordered = sorted(line.nodes(), key=repr)
        initial = {v: i for i, v in enumerate(ordered)}
        extras = {"initial_coloring": initial, "m0": len(initial)}
        crashes = {v: (i % 3) + 1 for i, v in enumerate(ordered[::4])}
        self.assert_crash_parity(line, LinialAlgorithm(), extras, crashes)

    def test_everyone_crashes_in_round_one(self):
        graph = small_graph("gnp-30")
        ordered, extras = self.reduction_extras(graph)
        crashes = {v: 1 for v in ordered}
        ref = self.assert_crash_parity(graph, BasicReductionAlgorithm(), extras, crashes)
        assert ref.rounds == 1
        assert ref.crashed == frozenset(ordered)

    def test_crash_scheduled_after_termination_never_fires(self):
        graph = small_graph("regular-24-6")
        ordered, extras = self.reduction_extras(graph)
        crashes = {ordered[0]: 10**6}
        ref = self.assert_crash_parity(graph, BasicReductionAlgorithm(), extras, crashes)
        assert ref.crashed == frozenset()

    def test_crash_at_exact_wake_round(self):
        """Crash a node in the round its sleep hint would have woken it:
        the vector engine must not step (or count) it."""
        graph = small_graph("regular-24-6")
        ordered, extras = self.reduction_extras(graph)
        baseline = get_engine("reference").run(
            graph, BasicReductionAlgorithm(), extras=dict(extras)
        )
        # color class c acts late in the schedule; crash a mid-schedule
        # node at every plausible wake round and require parity each time
        victim = ordered[len(ordered) // 2]
        for crash_round in range(2, min(baseline.rounds, 12)):
            self.assert_crash_parity(
                graph, BasicReductionAlgorithm(), extras, {victim: crash_round}
            )

    def test_bandwidth_parity_without_crashes(self):
        graph = small_graph("gnp-30")
        _, extras = self.reduction_extras(graph)
        ref = get_engine("reference").run(
            graph, BasicReductionAlgorithm(), extras=dict(extras), track_bandwidth=True
        )
        vec = get_engine("vector").run(
            graph, BasicReductionAlgorithm(), extras=dict(extras), track_bandwidth=True
        )
        assert vec.max_message_bits == ref.max_message_bits > 0

    def test_unknown_crash_node_rejected_by_both(self):
        from repro.errors import SimulationError

        graph = small_graph("path-7")
        _, extras = self.reduction_extras(graph)
        for engine in ("reference", "vector"):
            with pytest.raises(SimulationError, match="unknown nodes"):
                get_engine(engine).run(
                    graph, BasicReductionAlgorithm(), extras=dict(extras),
                    crashes={"no-such-node": 1},
                )


class TestParityAtModerateScale:
    """One larger instance per hot path, so the event-driven skipping is
    actually exercised at depth (hundreds of rounds, mostly-idle nodes)."""

    def test_basic_reduction_large_palette(self):
        line, _ = line_graph_with_cover(random_regular(40, 6, seed=3))
        initial = linial_coloring(line)
        delta = max(d for _, d in line.degree())
        extras = {
            "coloring": initial,
            "m": max(initial.values()) + 1,
            "target": 2 * delta + 1,
        }
        ref = get_engine("reference").run(line, BasicReductionAlgorithm(), extras=extras)
        vec = get_engine("vector").run(line, BasicReductionAlgorithm(), extras=extras)
        assert vec.outputs == ref.outputs
        assert vec.rounds == ref.rounds
        assert vec.round_messages == ref.round_messages

    def test_thm52_pipeline(self):
        from repro.graphs import star_forest_stack

        graph = star_forest_stack(6, 30, 3, seed=17)
        assert_same_run(*run_both("thm52", graph, arboricity=3))


class TestPipelineOutputParity:
    """PR 4 satellite: output-equality (not just round-count) assertions
    for the arboricity and star-partition pipelines at the pipeline API
    level — the per-edge/per-vertex dicts and the intermediate structures
    (H-partition index, induced orientation) must be identical under both
    engines, and the shared output must pass the invariant oracles."""

    @staticmethod
    def _under(engine_name, fn):
        from repro.engine import use_engine

        with use_engine(engine_name):
            return fn()

    @pytest.mark.parametrize("x", (1, 2))
    def test_star_partition_pipeline_outputs(self, x):
        from repro.core import star_partition_edge_coloring
        from repro.verify import verify_star_partition

        graph = random_regular(24, 8, seed=3)
        ref = self._under("reference", lambda: star_partition_edge_coloring(graph, x=x))
        vec = self._under("vector", lambda: star_partition_edge_coloring(graph, x=x))
        assert vec.coloring == ref.coloring  # the full per-edge dict
        assert vec.colors_used == ref.colors_used
        assert vec.palette_bound == ref.palette_bound
        assert vec.target_colors == ref.target_colors
        assert vec.rounds_actual == ref.rounds_actual
        # The shared output is a valid (p, 1)-star-partition of E(G).
        classes = {}
        for edge, color in ref.coloring.items():
            classes.setdefault(color, []).append(edge)
        assert verify_star_partition(graph, classes, q=1)

    def test_four_delta_pipeline_outputs(self):
        from repro.core import four_delta_edge_coloring

        graph = erdos_renyi(30, 0.2, seed=5)
        ref = self._under("reference", lambda: four_delta_edge_coloring(graph))
        vec = self._under("vector", lambda: four_delta_edge_coloring(graph))
        assert vec.coloring == ref.coloring
        assert vec.colors_used == ref.colors_used

    def test_h_partition_structures_identical(self):
        from repro.graphs import star_forest_stack
        from repro.substrates.hpartition import h_partition

        graph = star_forest_stack(6, 20, 2, seed=7)
        ref = self._under("reference", lambda: h_partition(graph, arboricity=2))
        vec = self._under("vector", lambda: h_partition(graph, arboricity=2))
        assert vec.index == ref.index  # the full per-vertex level dict
        assert vec.threshold == ref.threshold
        assert vec.num_levels == ref.num_levels
        # ... and the orientation both engines induce is the same digraph.
        assert ref.orientation().head == vec.orientation().head

    @pytest.mark.parametrize("algorithm", ("thm52", "thm53", "cor55"))
    def test_arboricity_pipeline_outputs(self, algorithm):
        from repro.core import (
            edge_color_bounded_arboricity,
            edge_color_delta_plus_o_delta,
            edge_color_orientation_connector,
        )

        fn = {
            "thm52": edge_color_bounded_arboricity,
            "thm53": edge_color_orientation_connector,
            "cor55": edge_color_delta_plus_o_delta,
        }[algorithm]
        from repro.graphs import star_forest_stack

        graph = star_forest_stack(5, 16, 2, seed=11)
        ref = self._under("reference", lambda: fn(graph, arboricity=2))
        vec = self._under("vector", lambda: fn(graph, arboricity=2))
        assert vec.coloring == ref.coloring
        assert vec.colors_used == ref.colors_used
        assert vec.palette_bound == ref.palette_bound
        assert vec.dhat == ref.dhat
        assert vec.rounds_actual == ref.rounds_actual

    def test_thm54_recursive_pipeline_outputs(self):
        from repro.core import edge_color_recursive

        graph = random_regular(20, 5, seed=9)
        ref = self._under(
            "reference", lambda: edge_color_recursive(graph, x=2, arboricity=3)
        )
        vec = self._under(
            "vector", lambda: edge_color_recursive(graph, x=2, arboricity=3)
        )
        assert vec.coloring == ref.coloring
        assert vec.colors_used == ref.colors_used
        assert vec.palette_bound == ref.palette_bound
