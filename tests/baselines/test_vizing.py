"""Tests for the Misra-Gries (Delta+1)-edge-coloring baseline."""

import networkx as nx
import pytest

from repro.analysis import verify_edge_coloring
from repro.graphs import erdos_renyi, max_degree, random_regular
from repro.baselines import misra_gries_edge_coloring


class TestVizingBound:
    def test_menagerie(self, nonempty_graph):
        coloring = misra_gries_edge_coloring(nonempty_graph)
        delta = max_degree(nonempty_graph)
        verify_edge_coloring(nonempty_graph, coloring, palette=delta + 1)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        g = erdos_renyi(35, 0.25, seed=seed)
        coloring = misra_gries_edge_coloring(g)
        verify_edge_coloring(g, coloring, palette=max_degree(g) + 1)

    @pytest.mark.parametrize("d", [3, 5, 7, 10])
    def test_regular_graphs(self, d):
        n = 22 if (22 * d) % 2 == 0 else 23
        g = random_regular(n, d, seed=d)
        coloring = misra_gries_edge_coloring(g)
        verify_edge_coloring(g, coloring, palette=d + 1)

    def test_complete_graphs(self):
        # K_n is class 1 for even n (Delta colors suffice) and class 2 for
        # odd n (Delta+1 needed); Misra-Gries must stay within Delta+1.
        for n in (4, 5, 6, 7, 8, 9):
            g = nx.complete_graph(n)
            coloring = misra_gries_edge_coloring(g)
            verify_edge_coloring(g, coloring, palette=n)  # Delta+1 = n

    def test_bipartite_graphs(self):
        # Koenig: bipartite graphs are Delta-edge-colorable; Delta+1 is safe.
        g = nx.complete_bipartite_graph(5, 7)
        coloring = misra_gries_edge_coloring(g)
        verify_edge_coloring(g, coloring, palette=8)

    def test_petersen(self):
        # Petersen is the classic class-2 graph: needs exactly 4 = Delta+1.
        coloring = misra_gries_edge_coloring(nx.petersen_graph())
        verify_edge_coloring(nx.petersen_graph(), coloring, palette=4)

    def test_empty(self):
        assert misra_gries_edge_coloring(nx.Graph()) == {}

    def test_single_edge(self):
        coloring = misra_gries_edge_coloring(nx.path_graph(2))
        assert list(coloring.values()) == [0]

    def test_deterministic(self):
        g = erdos_renyi(25, 0.3, seed=42)
        assert misra_gries_edge_coloring(g) == misra_gries_edge_coloring(g)
