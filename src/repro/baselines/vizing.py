"""Misra–Gries (Delta+1)-edge-coloring — the centralized quality reference.

Vizing's theorem ([36] in the paper) guarantees every simple graph admits a
(Delta+1)-edge-coloring; Misra & Gries give a constructive O(nm) algorithm
(maximal fans + cd-path inversion). The paper's contribution is approaching
``Delta + o(Delta)`` *distributedly*; this module provides the color-count
gold standard the benchmarks compare against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import ColoringError
from repro.types import Edge, EdgeColoring, NodeId, edge_key


class _State:
    """Edge colors plus, per vertex, the inverse map color -> partner."""

    def __init__(self, graph: nx.Graph, palette: int):
        self.graph = graph
        self.palette = palette
        self.color: Dict[Edge, int] = {}
        self.used: Dict[NodeId, Dict[int, NodeId]] = {v: {} for v in graph.nodes()}

    def first_free(self, v: NodeId) -> int:
        for c in range(self.palette):
            if c not in self.used[v]:
                return c
        raise ColoringError(f"no free color at {v!r} within palette {self.palette}")

    def is_free(self, v: NodeId, c: int) -> bool:
        return c not in self.used[v]

    def set_color(self, u: NodeId, v: NodeId, c: int) -> None:
        if c in self.used[u] or c in self.used[v]:
            raise ColoringError(f"color {c} not free on ({u!r},{v!r})")
        e = edge_key(u, v)
        if e in self.color:
            raise ColoringError(f"edge {e!r} already colored; unset first")
        self.color[e] = c
        self.used[u][c] = v
        self.used[v][c] = u

    def unset(self, u: NodeId, v: NodeId) -> Optional[int]:
        e = edge_key(u, v)
        old = self.color.pop(e, None)
        if old is not None:
            del self.used[u][old]
            del self.used[v][old]
        return old


def _maximal_fan(state: _State, u: NodeId, v: NodeId) -> List[NodeId]:
    """A maximal fan of u starting at v: each subsequent spoke's edge color
    is free at the previous spoke."""
    fan = [v]
    candidates = {
        w
        for w in state.graph.neighbors(u)
        if edge_key(u, w) in state.color and w != v
    }
    extended = True
    while extended:
        extended = False
        last = fan[-1]
        for w in sorted(candidates, key=repr):
            if state.is_free(last, state.color[edge_key(u, w)]):
                fan.append(w)
                candidates.discard(w)
                extended = True
                break
    return fan


def _invert_cd_path(state: _State, u: NodeId, c: int, d: int) -> None:
    """Invert the maximal path starting at u whose edges alternate d, c.

    c is free at u, so u is an endpoint of its c/d alternating component,
    which is therefore a simple path. All path edges are unset before
    re-coloring so the inverse maps never clobber each other.
    """
    path: List[Tuple[Edge, int]] = []
    current = u
    want = d
    while True:
        partner = state.used[current].get(want)
        if partner is None:
            break
        e = edge_key(current, partner)
        path.append((e, want))
        current = partner
        want = c if want == d else d
    for (a, b), _ in path:
        state.unset(a, b)
    for (a, b), old in path:
        state.set_color(a, b, c if old == d else d)


def _rotate_fan(state: _State, u: NodeId, fan: List[NodeId]) -> None:
    """Shift each fan edge's color one spoke backwards; (u, fan[-1]) ends up
    uncolored. Valid because color(u, fan[i+1]) is free at fan[i]."""
    shifted = [state.color[edge_key(u, w)] for w in fan[1:]]
    for w in fan[1:]:
        state.unset(u, w)
    for w, c in zip(fan[:-1], shifted):
        state.set_color(u, w, c)


def _color_edge(state: _State, u: NodeId, v: NodeId) -> None:
    fan = _maximal_fan(state, u, v)
    c = state.first_free(u)
    d = state.first_free(fan[-1])
    if c != d and not state.is_free(u, d):
        _invert_cd_path(state, u, c, d)
    # d is now free at u (the inversion recolored u's d-edge to c, and the
    # path cannot return to u). Find a prefix fan ending at a spoke where d
    # is free; the Misra-Gries invariant guarantees one exists.
    chosen = None
    for i, w in enumerate(fan):
        if i > 0:
            col = state.color.get(edge_key(u, fan[i]))
            if col is None or not state.is_free(fan[i - 1], col):
                break  # inversion broke the fan beyond this point
        if state.is_free(w, d):
            chosen = i
            break
    if chosen is None:
        raise ColoringError("Misra-Gries: no valid fan prefix found")
    prefix = fan[: chosen + 1]
    _rotate_fan(state, u, prefix)
    state.set_color(u, prefix[-1], d)


def misra_gries_edge_coloring(graph: nx.Graph) -> EdgeColoring:
    """A proper edge coloring with at most Delta+1 colors (Vizing bound)."""
    delta = max((d for _, d in graph.degree()), default=0)
    if graph.number_of_edges() == 0:
        return {}
    state = _State(graph, palette=delta + 1)
    # edges() yields traversal-dependent orientations; canonicalize through
    # edge_key so the sweep order and each fan's center are representation-
    # independent (CompactGraph vs networkx, any insertion order).
    canonical = sorted(
        (edge_key(u, v) for u, v in graph.edges()),
        key=lambda e: (repr(e[0]), repr(e[1])),
    )
    for u, v in canonical:
        if edge_key(u, v) not in state.color:
            _color_edge(state, u, v)
    for u, v in graph.edges():
        if edge_key(u, v) not in state.color:
            raise ColoringError(f"edge ({u!r},{v!r}) left uncolored")
    return dict(state.color)


# ---------------------------------------------------------------- registry

from repro import registry as _registry
from repro.types import num_colors as _num_colors


def _run_vizing(graph: nx.Graph) -> _registry.AlgorithmRun:
    coloring = misra_gries_edge_coloring(graph)
    return _registry.AlgorithmRun(
        name="vizing",
        kind="edge-coloring",
        coloring=coloring,
        colors_used=_num_colors(coloring),
    )


_registry.register(
    _registry.AlgorithmSpec(
        name="vizing",
        family="baseline",
        kind="edge-coloring",
        summary="Misra-Gries constructive Vizing: the centralized color-count reference",
        color_bound="Delta + 1",
        rounds_bound="centralized",
        runner=_run_vizing,
        invariants=("proper-edge-coloring", "palette-bound"),
        distributed=False,
        compact_ok=True,  # nodes()/edges()/neighbors()/degree() only
    )
)
