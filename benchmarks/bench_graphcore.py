#!/usr/bin/env python3
"""Benchmark: the compact graph core against the networkx pipeline.

Two gates, one informational section, written to ``BENCH_graphcore.json``
(nonzero exit if a gate fails):

* **conversion-skip** — time from a cold workload reference to a
  completed ``VectorEngine`` pass over every node of the scale family's
  ``scale-regular`` instance (50k nodes, Delta 8). The nx pipeline pays
  ``workloads.build`` (networkx generation) plus the engine's per-node
  nx-adjacency walk on every run; the graph-store pipeline memory-maps a
  prebuilt ``.csrg`` and feeds the engine its native CSR path. Gate:
  the compact pipeline is >= ``--require-speedup`` (default 2.0) times
  faster. (The one-time ``.csrg`` build cost is reported, not gated —
  amortized across every later run of the same content-addressed file.)
* **build-rss** — peak RSS of building a 1,000,000-node planar grid in a
  fresh subprocess: ``graphcore.build_grid`` (CSR arrays) vs
  ``graphs.planar_grid`` (networkx). Gate: the CSR build peaks below
  half the networkx build.
* **xl timings** (informational) — build/save/mmap-load wall times for
  the 1M-node grid in this process.

Run:  PYTHONPATH=src python benchmarks/bench_graphcore.py
"""

from __future__ import annotations

import argparse
import gc
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import workloads
from repro.engine import get_engine
from repro.graphcore import CompactGraph, build_grid, load, save
from repro.local import NodeAlgorithm

SCALE_WORKLOAD = "scale-regular"  # 50k nodes, d=8 at registered defaults
REPEATS = 3

_CHILD_TEMPLATE = """\
import resource, sys
sys.path.insert(0, {src!r})
{body}
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""

_CSR_BODY = "from repro.graphcore import build_grid; g = build_grid(1000, 1000)"
_NX_BODY = "from repro.graphs import planar_grid; g = planar_grid(1000, 1000)"


class _HaltAtInit(NodeAlgorithm):
    """Zero-round probe: the run is pure graph ingestion + one engine
    sweep, no algorithm wall time to drown the measurement in."""

    def initialize(self, node, ctx):
        node.state["output"] = 0
        node.halt()

    def step(self, node, inbox, round_no, ctx):  # pragma: no cover
        node.halt()


def _best(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def bench_conversion_skip(csrg_path: Path) -> dict:
    engine = get_engine("vector")

    def nx_pipeline():
        graph = workloads.build(SCALE_WORKLOAD, seed=0)
        engine.run(graph, _HaltAtInit())

    def compact_pipeline():
        graph = load(csrg_path, mmap=True)
        engine.run(graph, _HaltAtInit())

    build_started = time.perf_counter()
    compact = CompactGraph.from_networkx(workloads.build(SCALE_WORKLOAD, seed=0))
    digest = save(compact, csrg_path)
    one_time_build_s = time.perf_counter() - build_started

    nx_s = _best(nx_pipeline)
    compact_s = _best(compact_pipeline)
    return {
        "workload": SCALE_WORKLOAD,
        "n": compact.n,
        "m": compact.m,
        "digest": digest,
        "nx_pipeline_s": nx_s,
        "compact_pipeline_s": compact_s,
        "one_time_csrg_build_s": one_time_build_s,
        "speedup": nx_s / compact_s if compact_s > 0 else float("inf"),
    }


def _child_rss_kib(body: str) -> int:
    src = str(Path(__file__).resolve().parent.parent / "src")
    script = _CHILD_TEMPLATE.format(src=src, body=body)
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    return int(out.stdout.strip().splitlines()[-1])


def bench_build_rss() -> dict:
    csr_kib = _child_rss_kib(_CSR_BODY)
    nx_kib = _child_rss_kib(_NX_BODY)
    return {
        "nodes": 1_000_000,
        "csr_peak_rss_kib": csr_kib,
        "nx_peak_rss_kib": nx_kib,
        "ratio": nx_kib / csr_kib if csr_kib else float("inf"),
    }


def bench_xl_timings(tmp: Path) -> dict:
    path = tmp / "xl-grid.csrg"
    started = time.perf_counter()
    graph = build_grid(1000, 1000)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    save(graph, path)
    save_s = time.perf_counter() - started
    started = time.perf_counter()
    mapped = load(path, mmap=True)
    mmap_load_s = time.perf_counter() - started
    return {
        "n": mapped.n,
        "m": mapped.m,
        "file_bytes": path.stat().st_size,
        "build_s": build_s,
        "save_s": save_s,
        "mmap_load_s": mmap_load_s,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require-speedup", type=float, default=2.0)
    parser.add_argument("--require-rss-ratio", type=float, default=2.0)
    parser.add_argument("--out", default="BENCH_graphcore.json")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        conversion = bench_conversion_skip(Path(tmp) / "scale.csrg")
        xl = bench_xl_timings(Path(tmp))
    rss = bench_build_rss()

    gates = {
        "conversion_skip_speedup": {
            "required": args.require_speedup,
            "measured": conversion["speedup"],
            "passed": conversion["speedup"] >= args.require_speedup,
        },
        "million_node_build_rss": {
            "required": args.require_rss_ratio,
            "measured": rss["ratio"],
            "passed": rss["ratio"] >= args.require_rss_ratio,
        },
    }
    payload = {
        "benchmark": "graphcore",
        "conversion_skip": conversion,
        "build_rss": rss,
        "xl_grid_timings": xl,
        "gates": gates,
        "passed": all(g["passed"] for g in gates.values()),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    print(
        f"conversion-skip ({SCALE_WORKLOAD}): nx {conversion['nx_pipeline_s']:.2f}s "
        f"vs compact {conversion['compact_pipeline_s']:.2f}s "
        f"-> {conversion['speedup']:.1f}x (gate {args.require_speedup}x)"
    )
    print(
        f"1M-node build RSS: csr {rss['csr_peak_rss_kib'] // 1024} MiB vs "
        f"nx {rss['nx_peak_rss_kib'] // 1024} MiB -> {rss['ratio']:.1f}x "
        f"(gate {args.require_rss_ratio}x)"
    )
    print(
        f"xl-grid: build {xl['build_s']:.2f}s, save {xl['save_s']:.2f}s, "
        f"mmap load {xl['mmap_load_s'] * 1000:.1f}ms, "
        f"{xl['file_bytes'] // (1 << 20)} MiB on disk"
    )
    print(f"wrote {args.out}")
    if not payload["passed"]:
        failing = [k for k, g in gates.items() if not g["passed"]]
        print(f"FAILED gates: {', '.join(failing)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
