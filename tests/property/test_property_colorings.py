"""Property-based tests (hypothesis) over random graphs.

Every invariant here is a theorem of the paper: properness of each
algorithm's output, the connector degree bounds, the H-partition property,
and the palette bounds — checked on arbitrary generated graphs.
"""

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import verify_edge_coloring, verify_vertex_coloring
from repro.graphs import CliqueCover, line_graph_with_cover, max_degree
from repro.core import (
    build_clique_connector,
    build_edge_connector,
    cd_coloring,
    edge_color_bounded_arboricity,
    star_partition_edge_coloring,
)
from repro.substrates import (
    ColoringOracle,
    basic_color_reduction,
    h_partition,
    kuhn_wattenhofer_reduction,
    linial_coloring,
)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def gnp_graphs(draw, max_n=28):
    n = draw(st.integers(min_value=2, max_value=max_n))
    p = draw(st.floats(min_value=0.05, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return nx.gnp_random_graph(n, p, seed=seed)


@st.composite
def sparse_graphs(draw, max_n=30):
    n = draw(st.integers(min_value=3, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    import random as _random

    rng = _random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # union of two random functional forests: arboricity <= 2
    for layer in (0, 1):
        for v in range(1, n):
            u = rng.randrange(v)
            graph.add_edge(v, u)
    return graph


class TestLinialProperties:
    @SETTINGS
    @given(gnp_graphs())
    def test_linial_proper(self, graph):
        coloring = linial_coloring(graph)
        verify_vertex_coloring(graph, coloring)

    @SETTINGS
    @given(gnp_graphs())
    def test_linial_color_count(self, graph):
        coloring = linial_coloring(graph)
        delta = max_degree(graph)
        used = max(coloring.values(), default=-1) + 1
        assert used <= max(graph.number_of_nodes(), 10 * (delta + 1) ** 2)


class TestReductionProperties:
    @SETTINGS
    @given(gnp_graphs(), st.integers(min_value=2, max_value=9))
    def test_basic_reduction_proper(self, graph, spread):
        coloring = {
            v: i * spread for i, v in enumerate(sorted(graph.nodes(), key=repr))
        }
        delta = max_degree(graph)
        reduced = basic_color_reduction(graph, coloring, delta + 1)
        verify_vertex_coloring(graph, reduced, palette=delta + 1)

    @SETTINGS
    @given(gnp_graphs(), st.integers(min_value=3, max_value=50))
    def test_kw_reduction_proper(self, graph, spread):
        coloring = {
            v: i * spread for i, v in enumerate(sorted(graph.nodes(), key=repr))
        }
        delta = max_degree(graph)
        reduced = kuhn_wattenhofer_reduction(graph, coloring)
        verify_vertex_coloring(graph, reduced, palette=delta + 1)


class TestOracleProperties:
    @SETTINGS
    @given(gnp_graphs())
    def test_vertex_oracle(self, graph):
        coloring = ColoringOracle().vertex_coloring(graph)
        verify_vertex_coloring(graph, coloring, palette=max_degree(graph) + 1)

    @SETTINGS
    @given(gnp_graphs(max_n=20))
    def test_edge_oracle(self, graph):
        coloring = ColoringOracle().edge_coloring(graph)
        delta = max_degree(graph)
        if graph.number_of_edges():
            verify_edge_coloring(graph, coloring, palette=max(2 * delta - 1, 1))


class TestConnectorProperties:
    @SETTINGS
    @given(gnp_graphs(max_n=18), st.integers(min_value=2, max_value=5))
    def test_clique_connector_degree(self, graph, t):
        line, cover = line_graph_with_cover(graph)
        if line.number_of_nodes() == 0:
            return
        connector = build_clique_connector(line, cover, t)
        assert max_degree(connector) <= cover.diversity() * (t - 1)

    @SETTINGS
    @given(gnp_graphs(max_n=22), st.integers(min_value=1, max_value=5))
    def test_edge_connector_degree(self, graph, t):
        if graph.number_of_edges() == 0:
            return
        connector = build_edge_connector(graph, t)
        assert max_degree(connector.graph) <= t
        assert len(connector.edge_map) == graph.number_of_edges()


class TestHPartitionProperties:
    @SETTINGS
    @given(sparse_graphs(), st.floats(min_value=2.2, max_value=6.0))
    def test_partition_property_and_orientation(self, graph, q):
        hp = h_partition(graph, arboricity=2, q=q)
        hp.validate()
        orientation = hp.orientation()
        assert orientation.is_acyclic()
        assert orientation.max_out_degree() <= hp.threshold


class TestEndToEndProperties:
    @SETTINGS
    @given(gnp_graphs(max_n=16), st.integers(min_value=1, max_value=2))
    def test_star_partition_proper_and_bounded(self, graph, x):
        if graph.number_of_edges() == 0:
            return
        result = star_partition_edge_coloring(graph, x=x)
        delta = max_degree(graph)
        verify_edge_coloring(
            graph, result.coloring, palette=max(2 ** (x + 1) * delta, 2 * delta - 1)
        )

    @SETTINGS
    @given(gnp_graphs(max_n=14))
    def test_cd_coloring_proper(self, graph):
        line, cover = line_graph_with_cover(graph)
        if line.number_of_nodes() == 0:
            return
        result = cd_coloring(line, cover, x=1)
        verify_vertex_coloring(line, result.coloring)

    @SETTINGS
    @given(sparse_graphs(max_n=24))
    def test_theorem_5_2_proper(self, graph):
        if graph.number_of_edges() == 0:
            return
        result = edge_color_bounded_arboricity(graph, arboricity=2)
        verify_edge_coloring(graph, result.coloring, palette=result.palette_bound)
