"""Built-in checker families.

Importing this package registers every built-in checker with
:mod:`repro.checks.base`. Modules are imported in a fixed, explicit
order so the registry's contents never depend on filesystem listing
order — the same discipline ``det-set-iteration`` enforces on the
algorithm registries.
"""

from __future__ import annotations

from repro.checks.rules import (  # noqa: F401  (imported for registration side effects)
    determinism,
    exceptions,
    fork_safety,
    purity,
    registry_contracts,
    schema_freeze,
)

__all__ = [
    "determinism",
    "exceptions",
    "fork_safety",
    "purity",
    "registry_contracts",
    "schema_freeze",
]
