"""Round accounting across composed algorithm phases.

Distributed colorings in this paper are compositions: "color the connector,
then recurse on every color class *in parallel*, then merge". A
:class:`RoundLedger` records the cost of each phase — both the rounds the
simulator actually executed and the closed-form *modeled* rounds of the
oracle the paper cites — and composes them with the LOCAL-model semantics:

* sequential phases add,
* parallel branches cost the maximum over branches (they run simultaneously
  on disjoint parts of the network).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class LedgerEntry:
    label: str
    actual: float
    modeled: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: actual={self.actual:g}, modeled={self.modeled:g}"


@dataclass
class RoundLedger:
    """A tree-structured account of simulated and modeled rounds."""

    label: str = "total"
    entries: List[LedgerEntry] = field(default_factory=list)
    children: List["RoundLedger"] = field(default_factory=list)

    def add(self, label: str, actual: float, modeled: Optional[float] = None) -> None:
        """Record a sequential phase. ``modeled`` defaults to ``actual``."""
        if actual < 0:
            raise ValueError("round counts cannot be negative")
        self.entries.append(
            LedgerEntry(label=label, actual=float(actual), modeled=float(modeled if modeled is not None else actual))
        )

    @contextmanager
    def parallel(self, label: str) -> Iterator["ParallelScope"]:
        """Open a scope whose branches execute simultaneously.

        On exit the scope contributes ``max`` over its branches to this
        ledger, as a single sequential entry.
        """
        scope = ParallelScope(label)
        yield scope
        actual = max((b.total_actual for b in scope.branches), default=0.0)
        modeled = max((b.total_modeled for b in scope.branches), default=0.0)
        self.entries.append(LedgerEntry(label=label, actual=actual, modeled=modeled))
        self.children.extend(scope.branches)

    def subledger(self, label: str) -> "RoundLedger":
        """A nested sequential phase, merged into this ledger on account()."""
        child = RoundLedger(label=label)
        self.children.append(child)
        return child

    def account_subledger(self, child: "RoundLedger") -> None:
        """Fold a subledger created with :meth:`subledger` into the totals."""
        self.entries.append(
            LedgerEntry(label=child.label, actual=child.total_actual, modeled=child.total_modeled)
        )

    @property
    def total_actual(self) -> float:
        return sum(e.actual for e in self.entries)

    @property
    def total_modeled(self) -> float:
        return sum(e.modeled for e in self.entries)

    def summary(self) -> str:
        lines = [f"{self.label}: actual={self.total_actual:g} modeled={self.total_modeled:g}"]
        for entry in self.entries:
            lines.append(f"  - {entry!r}")
        return "\n".join(lines)


class ParallelScope:
    """Collects the branch ledgers of a parallel composition."""

    def __init__(self, label: str):
        self.label = label
        self.branches: List[RoundLedger] = []

    def branch(self, label: str) -> RoundLedger:
        ledger = RoundLedger(label=f"{self.label}/{label}")
        self.branches.append(ledger)
        return ledger
