"""Tests for the command-line interface."""

import networkx as nx
import pytest

from repro import io as repro_io
from repro.cli import EDGE_ALGORITHMS, main
from repro.graphs import random_regular


@pytest.fixture
def graph_file(tmp_path):
    g = random_regular(16, 4, seed=1)
    path = tmp_path / "g.edges"
    repro_io.write_edge_list(g, path)
    return path


class TestInfo:
    def test_prints_parameters(self, graph_file, capsys):
        assert main(["info", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "n          = 16" in out
        assert "Delta      = 4" in out
        assert "arboricity" in out


class TestColor:
    @pytest.mark.parametrize("algorithm", ["star4", "vizing", "greedy", "forest"])
    def test_algorithms_run(self, graph_file, capsys, algorithm):
        assert main(["color", "--graph", str(graph_file), "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "colors" in out

    def test_writes_output(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "coloring.json"
        assert (
            main(
                [
                    "color",
                    "--graph",
                    str(graph_file),
                    "--algorithm",
                    "greedy",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        coloring = repro_io.load_edge_coloring(out_path)
        graph = repro_io.read_edge_list(graph_file)
        assert len(coloring) == graph.number_of_edges()

    def test_x_parameter(self, graph_file, capsys):
        assert (
            main(["color", "--graph", str(graph_file), "--algorithm", "star", "--x", "2"])
            == 0
        )

    def test_all_algorithms_are_wired(self, graph_file, capsys):
        for algorithm in EDGE_ALGORITHMS:
            assert (
                main(["color", "--graph", str(graph_file), "--algorithm", algorithm])
                == 0
            ), algorithm


class TestFigures:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure-1-clique-connector" in out
        assert "OK" in out


class TestWorkloadsCommand:
    def test_lists_registry(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "random-regular" in out and "power-law" in out
        assert "[arboricity" in out

    def test_family_filter(self, capsys):
        assert main(["workloads", "--family", "adversarial"]) == 0
        out = capsys.readouterr().out
        assert "shared-cliques" in out and "random-regular" not in out

    def test_no_match(self, capsys):
        assert main(["workloads", "--family", "imaginary"]) == 1

    def test_json_output(self, capsys):
        import json

        assert main(["workloads", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {spec["name"]: spec for spec in payload}
        assert by_name["random-regular"]["defaults"] == {"n": 64, "d": 8}
        assert by_name["torus"]["seeded"] is False


class TestKernelsCommand:
    def test_lists_kernels_and_compact_split(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "linial" in out and "cole-vishkin" in out
        assert "compact-capable algorithms" in out
        assert "split" in out  # compact-capable since PR 9
        assert "conversion fallback" not in out  # no holdouts remain

    def test_json_output(self, capsys):
        import json

        assert main(["kernels", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "linial" in payload["kernels"]
        assert len(payload["compact_ok"]) == 21
        assert payload["compact_fallback"] == []
        assert isinstance(payload["numba_enabled"], bool)

    def test_algorithms_shows_compact_marker(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "[compact]" in out


class TestEngineJobsDefaults:
    def test_unknown_engine_is_actionable(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithm", "greedy", "--engine", "warp-drive"])
        err = capsys.readouterr().err
        assert "unknown engine 'warp-drive'" in err
        assert "reference" in err and "vector" in err

    def test_jobs_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithm", "greedy", "--jobs", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_jobs_defaults_to_cpu_count(self):
        import os

        from repro.cli import _resolve_jobs, build_parser

        args = build_parser().parse_args(["sweep", "--algorithm", "greedy"])
        assert args.jobs is None
        assert _resolve_jobs(args) == max(1, os.cpu_count() or 1)
        args = build_parser().parse_args(
            ["sweep", "--algorithm", "greedy", "--jobs", "3"]
        )
        assert _resolve_jobs(args) == 3


class TestVerifyCommand:
    @pytest.fixture
    def small_store(self, tmp_path):
        path = tmp_path / "runs.db"
        assert main([
            "campaign", "cells", "--store", str(path),
            "--algorithms", "star4,greedy", "--workloads", "random-regular",
            "--seeds", "0", "--jobs", "1",
        ]) == 0
        return path

    def test_requires_store_or_diff(self):
        with pytest.raises(SystemExit, match="--store and/or --diff"):
            main(["verify"])

    def test_clean_store_passes(self, small_store, capsys):
        assert main(["verify", "--store", str(small_store)]) == 0
        out = capsys.readouterr().out
        assert "2 rows re-checked, 0 flagged" in out

    def test_corrupted_row_flagged_and_recorded(self, small_store, capsys):
        import sqlite3

        conn = sqlite3.connect(small_store)
        key = conn.execute(
            "SELECT run_key FROM runs WHERE algorithm='star4'"
        ).fetchone()[0]
        conn.execute(
            "UPDATE runs SET colors_used = colors_used + 9 WHERE run_key = ?",
            (key,),
        )
        conn.commit()
        conn.close()
        assert main(["verify", "--store", str(small_store)]) == 1
        out = capsys.readouterr().out
        assert out.count("FLAGGED") == 1
        assert key[:12] in out
        # the verdict landed in the store: query --verdict fail finds it,
        # gc --failed collects it
        assert main([
            "query", "--store", str(small_store), "--verdict", "fail",
        ]) == 0
        assert "(1 rows)" in capsys.readouterr().out
        assert main([
            "gc", "--store", str(small_store), "--failed", "--keep-errors",
        ]) == 0
        assert "deleted 1 of 2 rows" in capsys.readouterr().out

    def test_unverified_queue(self, small_store, capsys):
        import sqlite3

        conn = sqlite3.connect(small_store)
        conn.execute("UPDATE runs SET verdict = NULL, violation = NULL")
        conn.commit()
        conn.close()
        assert main([
            "query", "--store", str(small_store), "--unverified",
        ]) == 0
        assert "(2 rows)" in capsys.readouterr().out
        assert main([
            "verify", "--store", str(small_store), "--unverified",
        ]) == 0
        capsys.readouterr()
        # the backlog is now empty
        assert main([
            "query", "--store", str(small_store), "--unverified",
        ]) == 0
        assert "(0 rows)" in capsys.readouterr().out

    def test_diff_filters_and_runs(self, capsys):
        assert main([
            "verify", "--diff", "--algorithms", "star4",
            "--workloads", "random-regular",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 cells x engines (reference, vector), 0 diverged" in out

    def test_diff_unknown_filter_rejected(self):
        with pytest.raises(SystemExit, match="no differential cells match"):
            main(["verify", "--diff", "--algorithms", "nope"])
