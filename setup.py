"""Legacy setup shim so editable installs work without network access
(the sandbox has no `wheel` package, so PEP 660 editable wheels are
unavailable; `setup.py develop` is used instead)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Barenboim-Elkin-Maimon (PODC 2017): deterministic "
        "distributed (Delta + o(Delta))-edge-coloring and vertex-coloring of "
        "graphs with bounded diversity"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy>=1.24"],
)
