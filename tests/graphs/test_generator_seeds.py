"""Seed-stability regression suite for the stochastic generators.

Every stochastic generator must route its randomness through a locally
seeded RNG (``generators._rng`` or an explicit networkx seed), never the
global ``random`` module. These tests pin the exact node/edge sets per
(generator, seed) so any accidental reseeding, global-state dependence, or
silent generator rewrite shows up as a fingerprint mismatch.

The fingerprints are environment-pins: they encode the behavior of the
installed Python/networkx. If a deliberate upgrade changes them, re-pin
with the printout in the assertion message.
"""

import hashlib
import random

import pytest

from repro.graphs import generators


def _fingerprint(graph) -> str:
    payload = repr(
        (
            sorted(graph.nodes()),
            sorted(tuple(sorted(edge)) for edge in graph.edges()),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: (factory taking only a seed) per stochastic generator.
FACTORIES = {
    "erdos_renyi": lambda seed: generators.erdos_renyi(32, 0.15, seed=seed),
    "random_regular": lambda seed: generators.random_regular(24, 4, seed=seed),
    "random_tree": lambda seed: generators.random_tree(32, seed=seed),
    "forest_union": lambda seed: generators.forest_union(32, 3, seed=seed),
    "star_forest_stack": lambda seed: generators.star_forest_stack(4, 6, 2, seed=seed),
    "random_bipartite_regular": lambda seed: generators.random_bipartite_regular(
        12, 3, seed=seed
    ),
}

#: Pinned (seed=0, seed=1) fingerprints per generator.
PINNED = {
    "erdos_renyi": ("a5f9b87e4552cfab", "2a837a1c2d96407f"),
    "random_regular": ("cdd45c664c834a06", "23b889d0b512442f"),
    "random_tree": ("7bd1b33179805879", "0bff4725001f322b"),
    "forest_union": ("447ca75c42a81479", "30e66583ddb74c10"),
    "star_forest_stack": ("a5d8516c4126856d", "bd5804fc92410d60"),
    "random_bipartite_regular": ("e32f5ca7b3ddf8e4", "f4568e59a038ada8"),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestSeedStability:
    def test_pinned_fingerprints(self, name):
        factory = FACTORIES[name]
        got = (_fingerprint(factory(0)), _fingerprint(factory(1)))
        assert got == PINNED[name], (
            f"{name}: node/edge sets drifted; if this was a deliberate "
            f"generator or dependency change, re-pin to {got!r}"
        )

    def test_seeds_differ(self, name):
        assert _fingerprint(FACTORIES[name](0)) != _fingerprint(FACTORIES[name](1))

    def test_immune_to_global_random_state(self, name):
        """Scrambling (and even reseeding) the global RNG between calls
        must not change the generated graph — the generators own their
        randomness."""
        factory = FACTORIES[name]
        state = random.getstate()
        try:
            random.seed(999)
            first = _fingerprint(factory(7))
            random.seed(123456)
            random.random()
            second = _fingerprint(factory(7))
        finally:
            random.setstate(state)
        assert first == second

    def test_global_state_untouched(self, name):
        """Generators must not advance the global ``random`` stream."""
        random.seed(42)
        expected = random.Random(42).random()
        FACTORIES[name](3)
        assert random.random() == expected
