"""Tests for the command-line interface."""

import networkx as nx
import pytest

from repro import io as repro_io
from repro.cli import EDGE_ALGORITHMS, main
from repro.graphs import random_regular


@pytest.fixture
def graph_file(tmp_path):
    g = random_regular(16, 4, seed=1)
    path = tmp_path / "g.edges"
    repro_io.write_edge_list(g, path)
    return path


class TestInfo:
    def test_prints_parameters(self, graph_file, capsys):
        assert main(["info", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "n          = 16" in out
        assert "Delta      = 4" in out
        assert "arboricity" in out


class TestColor:
    @pytest.mark.parametrize("algorithm", ["star4", "vizing", "greedy", "forest"])
    def test_algorithms_run(self, graph_file, capsys, algorithm):
        assert main(["color", "--graph", str(graph_file), "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "colors" in out

    def test_writes_output(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "coloring.json"
        assert (
            main(
                [
                    "color",
                    "--graph",
                    str(graph_file),
                    "--algorithm",
                    "greedy",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        coloring = repro_io.load_edge_coloring(out_path)
        graph = repro_io.read_edge_list(graph_file)
        assert len(coloring) == graph.number_of_edges()

    def test_x_parameter(self, graph_file, capsys):
        assert (
            main(["color", "--graph", str(graph_file), "--algorithm", "star", "--x", "2"])
            == 0
        )

    def test_all_algorithms_are_wired(self, graph_file, capsys):
        for algorithm in EDGE_ALGORITHMS:
            assert (
                main(["color", "--graph", str(graph_file), "--algorithm", algorithm])
                == 0
            ), algorithm


class TestFigures:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure-1-clique-connector" in out
        assert "OK" in out
